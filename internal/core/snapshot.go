package core

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot is the compiled, immutable, index-based view of a Graph: every
// object is a dense int32 ID, adjacency is compressed-sparse-row slices,
// and the per-node annotation maps are flattened into node×component
// weight tables. The pointer Graph stays the build/front-end
// representation; the hot estimation and partition-search layers walk the
// Snapshot so a move trial is pure array arithmetic — no pointer chasing,
// no string hashing.
//
// A Snapshot is a pure function of the Graph's slices (Nodes, Ports,
// Channels, Procs, Mems, Buses) in their stored order: Compile never reads
// the Graph's internal lookup maps, so it cannot be poisoned by a stale
// index, and compiling the same Graph twice yields byte-identical
// snapshots (see MarshalBinary). After Compile the Graph must not gain or
// lose objects while the Snapshot is in use; reannotating weights requires
// recompiling.
//
// ID spaces:
//
//	node    IDs index Graph.Nodes
//	port    IDs index Graph.Ports
//	comp    IDs index Graph.Components() — processors first, then memories
//	bus     IDs index Graph.Buses
//	channel IDs index Graph.Channels
//	type    IDs index TypeNames (sorted union of annotation/component types)
//
// A Snapshot is safe for concurrent readers; nothing mutates it after
// Compile returns.
type Snapshot struct {
	Name string

	// Per-node arrays, indexed by node ID.
	NodeKind  []NodeKind
	IsProcess []bool
	Storage   []int64 // StorageBits

	// Per-port arrays, indexed by port ID. The estimators never read
	// these, but Decompile must reproduce the Graph's ports exactly, so
	// the snapshot carries them.
	PortDir  []PortDir
	PortBits []int32

	// Per-component arrays, indexed by comp ID. IDs < NumProcs are
	// processors, the rest memories.
	NumProcs    int
	CompCustom  []bool
	CompSizeCon []float64
	CompPinCon  []int32
	CompType    []int32 // type ID of the component's TypeKey

	// Weight tables, indexed [nodeID*NumComps()+compID]; NaN marks a
	// missing annotation (the node has no weight for that component type).
	ICT  []float64
	Size []float64

	// Extra annotation weights: ICT/Size entries keyed by component types
	// that no allocated component uses. The node×comp tables above cannot
	// hold them (there is no comp ID), but TypeNames interns their type
	// names and Decompile must restore them, so they ride along as sparse
	// triples sorted by (node ID, type ID) — deterministic by construction.
	ExtraICT  []ExtraWeight
	ExtraSize []ExtraWeight

	// Per-bus arrays, indexed by bus ID.
	BusWidth []int32
	BusTS    []float64
	BusTD    []float64

	// Per-channel arrays, indexed by channel ID. ChanDst holds the
	// destination node ID, or -(portID+1) when the destination is an
	// external port.
	ChanSrc  []int32
	ChanDst  []int32
	ChanFreq []float64 // AccFreq
	ChanMin  []float64 // AccMin
	ChanMax  []float64 // AccMax
	ChanBits []int32
	ChanTag  []int32 // NoTag = strictly sequential

	// CSR adjacency: channels with Src = n are OutChan[OutStart[n]:
	// OutStart[n+1]]; channels with Dst = node n are InChan[InStart[n]:
	// InStart[n+1]] (port-destination channels appear in no In list).
	// Within a range, channel IDs are ascending, so per-node iteration
	// order matches the Graph's BehChans order.
	OutStart []int32
	OutChan  []int32
	InStart  []int32
	InChan   []int32

	// Interning tables: ID → name, for diagnostics.
	NodeNames []string
	PortNames []string
	CompNames []string
	BusNames  []string
	TypeNames []string

	nodeID map[string]int32
	portID map[string]int32
	compID map[string]int32
	busID  map[string]int32
}

// ExtraWeight is one sparse annotation entry: node ni carries weight W for
// the component type TypeNames[Type], which no allocated component uses.
type ExtraWeight struct {
	Node int32
	Type int32
	W    float64
}

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return len(s.NodeKind) }

// NumComps returns the component count (processors + memories).
func (s *Snapshot) NumComps() int { return len(s.CompType) }

// NumBuses returns the bus count.
func (s *Snapshot) NumBuses() int { return len(s.BusWidth) }

// NumChans returns the channel count.
func (s *Snapshot) NumChans() int { return len(s.ChanSrc) }

// IsMem reports whether comp ID ci is a memory.
func (s *Snapshot) IsMem(ci int32) bool { return int(ci) >= s.NumProcs }

// Out returns the IDs of the channels whose source is node ni, in channel
// order. The slice aliases the snapshot; callers must not modify it.
func (s *Snapshot) Out(ni int32) []int32 { return s.OutChan[s.OutStart[ni]:s.OutStart[ni+1]] }

// In returns the IDs of the channels whose destination is node ni, in
// channel order. Port-destination channels appear in no In list.
func (s *Snapshot) In(ni int32) []int32 { return s.InChan[s.InStart[ni]:s.InStart[ni+1]] }

// Ict returns the ICT weight of node ni on component ci; NaN = missing.
func (s *Snapshot) Ict(ni, ci int32) float64 { return s.ICT[int(ni)*s.NumComps()+int(ci)] }

// SizeOf returns the size weight of node ni on component ci; NaN = missing.
func (s *Snapshot) SizeOf(ni, ci int32) float64 { return s.Size[int(ni)*s.NumComps()+int(ci)] }

// NodeID returns the ID of the named node; -1 when absent.
func (s *Snapshot) NodeID(name string) int32 { return lookupID(s.nodeID, name) }

// CompID returns the ID of the named component; -1 when absent.
func (s *Snapshot) CompID(name string) int32 { return lookupID(s.compID, name) }

// BusID returns the ID of the named bus; -1 when absent.
func (s *Snapshot) BusID(name string) int32 { return lookupID(s.busID, name) }

func lookupID(m map[string]int32, name string) int32 {
	if id, ok := m[name]; ok {
		return id
	}
	return -1
}

// ChanKey returns the channel's "src->dst" identity, matching Channel.Key.
func (s *Snapshot) ChanKey(ci int32) string {
	dst := s.ChanDst[ci]
	name := ""
	if dst >= 0 {
		name = s.NodeNames[dst]
	} else {
		name = s.PortNames[-dst-1]
	}
	return s.NodeNames[s.ChanSrc[ci]] + "->" + name
}

// Compile flattens g into a Snapshot. It reads only the Graph's slices —
// never its internal lookup maps — and is deterministic: the same slice
// contents always produce the same snapshot, byte for byte. It fails on
// graphs whose flat form would be ambiguous (duplicate names) or
// inconsistent (channel endpoints not in the graph's slices).
func Compile(g *Graph) (*Snapshot, error) {
	nn, np, nb, nch := len(g.Nodes), len(g.Ports), len(g.Buses), len(g.Channels)
	comps := g.Components()
	nc := len(comps)
	s := &Snapshot{
		Name:      g.Name,
		NodeKind:  make([]NodeKind, nn),
		IsProcess: make([]bool, nn),
		Storage:   make([]int64, nn),

		PortDir:  make([]PortDir, np),
		PortBits: make([]int32, np),

		NumProcs:    len(g.Procs),
		CompCustom:  make([]bool, nc),
		CompSizeCon: make([]float64, nc),
		CompPinCon:  make([]int32, nc),
		CompType:    make([]int32, nc),

		ICT:  make([]float64, nn*nc),
		Size: make([]float64, nn*nc),

		BusWidth: make([]int32, nb),
		BusTS:    make([]float64, nb),
		BusTD:    make([]float64, nb),

		ChanSrc:  make([]int32, nch),
		ChanDst:  make([]int32, nch),
		ChanFreq: make([]float64, nch),
		ChanMin:  make([]float64, nch),
		ChanMax:  make([]float64, nch),
		ChanBits: make([]int32, nch),
		ChanTag:  make([]int32, nch),

		OutStart: make([]int32, nn+1),
		InStart:  make([]int32, nn+1),
		OutChan:  make([]int32, nch),

		NodeNames: make([]string, nn),
		PortNames: make([]string, np),
		CompNames: make([]string, nc),
		BusNames:  make([]string, nb),

		nodeID: make(map[string]int32, nn),
		portID: make(map[string]int32, np),
		compID: make(map[string]int32, nc),
		busID:  make(map[string]int32, nb),
	}

	// Objects and interning. Local pointer→ID maps resolve channel
	// endpoints by identity, so a foreign endpoint (same name, different
	// object) is an error, not a silent mis-wire.
	nodeOf := make(map[*Node]int32, nn)
	for i, n := range g.Nodes {
		if _, dup := s.nodeID[n.Name]; dup {
			return nil, fmt.Errorf("slif: compile: duplicate node name %q", n.Name)
		}
		if _, dup := s.portID[n.Name]; dup {
			return nil, fmt.Errorf("slif: compile: node %q collides with a port name", n.Name)
		}
		s.nodeID[n.Name] = int32(i)
		s.NodeNames[i] = n.Name
		s.NodeKind[i] = n.Kind
		s.IsProcess[i] = n.IsProcess
		s.Storage[i] = n.StorageBits
		nodeOf[n] = int32(i)
	}
	portOf := make(map[*Port]int32, np)
	for i, p := range g.Ports {
		if _, dup := s.portID[p.Name]; dup {
			return nil, fmt.Errorf("slif: compile: duplicate port name %q", p.Name)
		}
		if _, dup := s.nodeID[p.Name]; dup {
			return nil, fmt.Errorf("slif: compile: port %q collides with a node name", p.Name)
		}
		s.portID[p.Name] = int32(i)
		s.PortNames[i] = p.Name
		s.PortDir[i] = p.Dir
		s.PortBits[i] = int32(p.Bits)
		portOf[p] = int32(i)
	}

	// Type interning: sorted union of component types and node annotation
	// types. Sorting makes the ID assignment independent of map iteration
	// order over the ICT/Size annotation maps.
	typeSet := map[string]bool{}
	for _, c := range comps {
		typeSet[c.TypeKey()] = true
	}
	for _, n := range g.Nodes {
		for t := range n.ICT {
			typeSet[t] = true
		}
		for t := range n.Size {
			typeSet[t] = true
		}
	}
	s.TypeNames = make([]string, 0, len(typeSet))
	for t := range typeSet {
		s.TypeNames = append(s.TypeNames, t)
	}
	sort.Strings(s.TypeNames)
	typeID := make(map[string]int32, len(s.TypeNames))
	for i, t := range s.TypeNames {
		typeID[t] = int32(i)
	}

	for i, c := range comps {
		if _, dup := s.compID[c.CompName()]; dup {
			return nil, fmt.Errorf("slif: compile: duplicate component name %q", c.CompName())
		}
		s.compID[c.CompName()] = int32(i)
		s.CompNames[i] = c.CompName()
		s.CompType[i] = typeID[c.TypeKey()]
		switch p := c.(type) {
		case *Processor:
			s.CompCustom[i] = p.Custom
			s.CompSizeCon[i] = p.SizeCon
			s.CompPinCon[i] = int32(p.PinCon)
		case *Memory:
			s.CompSizeCon[i] = p.SizeCon
		}
	}
	for i, b := range g.Buses {
		if _, dup := s.busID[b.Name]; dup {
			return nil, fmt.Errorf("slif: compile: duplicate bus name %q", b.Name)
		}
		s.busID[b.Name] = int32(i)
		s.BusNames[i] = b.Name
		s.BusWidth[i] = int32(b.BitWidth)
		s.BusTS[i] = b.TS
		s.BusTD[i] = b.TD
	}

	// Weight tables, NaN-coded.
	for i, n := range g.Nodes {
		for ci, c := range comps {
			s.ICT[i*nc+ci] = weightOrNaN(n.ICT, c.TypeKey())
			s.Size[i*nc+ci] = weightOrNaN(n.Size, c.TypeKey())
		}
	}

	// Extra weights: annotations on types no component uses. Iterating
	// nodes in ID order and types in sorted-name (= type ID) order keeps
	// the slices deterministic regardless of map iteration.
	compType := make(map[string]bool, nc)
	for _, c := range comps {
		compType[c.TypeKey()] = true
	}
	var extraTypes []string
	for _, t := range s.TypeNames {
		if !compType[t] {
			extraTypes = append(extraTypes, t)
		}
	}
	for i, n := range g.Nodes {
		for _, t := range extraTypes {
			if w, ok := n.ICT[t]; ok {
				s.ExtraICT = append(s.ExtraICT, ExtraWeight{Node: int32(i), Type: typeID[t], W: w})
			}
			if w, ok := n.Size[t]; ok {
				s.ExtraSize = append(s.ExtraSize, ExtraWeight{Node: int32(i), Type: typeID[t], W: w})
			}
		}
	}

	// Channels and CSR adjacency. Two passes: count, then prefix-sum and
	// fill in channel order, which keeps per-node order identical to the
	// Graph's insertion-ordered BehChans/InChans lists.
	inCnt := make([]int32, nn)
	for ci, c := range g.Channels {
		si, ok := nodeOf[c.Src]
		if !ok {
			return nil, fmt.Errorf("slif: compile: channel %s has a source outside the graph", c.Key())
		}
		s.ChanSrc[ci] = si
		switch d := c.Dst.(type) {
		case *Node:
			di, ok := nodeOf[d]
			if !ok {
				return nil, fmt.Errorf("slif: compile: channel %s has a destination outside the graph", c.Key())
			}
			s.ChanDst[ci] = di
			inCnt[di]++
		case *Port:
			pi, ok := portOf[d]
			if !ok {
				return nil, fmt.Errorf("slif: compile: channel %s has a destination port outside the graph", c.Key())
			}
			s.ChanDst[ci] = -(pi + 1)
		default:
			return nil, fmt.Errorf("slif: compile: channel %s has no destination", c.Key())
		}
		s.ChanFreq[ci] = c.AccFreq
		s.ChanMin[ci] = c.AccMin
		s.ChanMax[ci] = c.AccMax
		s.ChanBits[ci] = int32(c.Bits)
		s.ChanTag[ci] = int32(c.Tag)
		s.OutStart[si+1]++
	}
	for i := 0; i < nn; i++ {
		s.OutStart[i+1] += s.OutStart[i]
		s.InStart[i+1] = s.InStart[i] + inCnt[i]
	}
	s.InChan = make([]int32, s.InStart[nn])
	outNext := make([]int32, nn)
	copy(outNext, s.OutStart[:nn])
	inNext := make([]int32, nn)
	copy(inNext, s.InStart[:nn])
	for ci := range g.Channels {
		si := s.ChanSrc[ci]
		s.OutChan[outNext[si]] = int32(ci)
		outNext[si]++
		if di := s.ChanDst[ci]; di >= 0 {
			s.InChan[inNext[di]] = int32(ci)
			inNext[di]++
		}
	}
	return s, nil
}

func weightOrNaN(m map[string]float64, key string) float64 {
	if w, ok := m[key]; ok {
		return w
	}
	return math.NaN()
}

// Assignment overlays a partition on a Snapshot as two flat ID vectors:
// the component per node and the bus per channel, -1 = unmapped. It is the
// hot-layer counterpart of Partition — a move is one int32 store, a trial
// touches no maps.
type Assignment struct {
	NodeComp []int32
	ChanBus  []int32
}

// NewAssignment returns an all-unmapped assignment sized for s.
func NewAssignment(s *Snapshot) *Assignment {
	a := &Assignment{
		NodeComp: make([]int32, s.NumNodes()),
		ChanBus:  make([]int32, s.NumChans()),
	}
	a.Clear()
	return a
}

// Clear unmaps everything.
func (a *Assignment) Clear() {
	for i := range a.NodeComp {
		a.NodeComp[i] = -1
	}
	for i := range a.ChanBus {
		a.ChanBus[i] = -1
	}
}

// CopyFrom copies src into a (same snapshot).
func (a *Assignment) CopyFrom(src *Assignment) {
	copy(a.NodeComp, src.NodeComp)
	copy(a.ChanBus, src.ChanBus)
}

// Capture translates pt — a Partition over the Graph s was compiled from —
// into a, resolving components and buses by name. Unmapped objects stay
// -1; a mapping to a component or bus unknown to the snapshot is an error.
func (s *Snapshot) Capture(pt *Partition, a *Assignment) error {
	g := pt.Graph()
	if len(g.Nodes) != s.NumNodes() || len(g.Channels) != s.NumChans() {
		return fmt.Errorf("slif: capture: partition graph does not match the snapshot")
	}
	for i, n := range g.Nodes {
		a.NodeComp[i] = -1
		c := pt.BvComp(n)
		if c == nil {
			continue
		}
		ci := s.CompID(c.CompName())
		if ci < 0 {
			return fmt.Errorf("slif: capture: node %q is mapped to component %q outside the snapshot", n.Name, c.CompName())
		}
		a.NodeComp[i] = ci
	}
	for i, c := range g.Channels {
		a.ChanBus[i] = -1
		b := pt.ChanBus(c)
		if b == nil {
			continue
		}
		bi := s.BusID(b.Name)
		if bi < 0 {
			return fmt.Errorf("slif: capture: channel %s is mapped to bus %q outside the snapshot", c.Key(), b.Name)
		}
		a.ChanBus[i] = bi
	}
	return nil
}

// snapMagic is the versioned header of the snapshot encoding. Version 2
// added the port dir/bits arrays and the sparse extra-weight tables that
// make the snapshot a complete image of its Graph (so Decompile can
// reconstruct it exactly); version-1 bytes are not accepted.
const snapMagic = "SLIFSNAP\x02"

// MarshalBinary serializes the snapshot deterministically: equal snapshots
// (and therefore equal compiled graphs) produce equal bytes. The format is
// a versioned magic followed by every array, length-prefixed, in struct
// order — the durability format the session store checkpoints, decoded by
// UnmarshalBinary and lifted back to a Graph by Decompile.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	var b []byte
	b = append(b, snapMagic...)
	b = appendString(b, s.Name)
	b = appendU32(b, uint32(s.NumProcs))

	b = appendU32(b, uint32(len(s.NodeKind)))
	for i := range s.NodeKind {
		k := byte(s.NodeKind[i])
		if s.IsProcess[i] {
			k |= 0x80
		}
		b = append(b, k)
		b = appendU64(b, uint64(s.Storage[i]))
	}

	b = appendU32(b, uint32(len(s.PortDir)))
	for i := range s.PortDir {
		b = append(b, byte(s.PortDir[i]))
		b = appendU32(b, uint32(s.PortBits[i]))
	}

	b = appendU32(b, uint32(len(s.CompType)))
	for i := range s.CompType {
		flag := byte(0)
		if s.CompCustom[i] {
			flag = 1
		}
		b = append(b, flag)
		b = appendU64(b, math.Float64bits(s.CompSizeCon[i]))
		b = appendU32(b, uint32(s.CompPinCon[i]))
		b = appendU32(b, uint32(s.CompType[i]))
	}

	b = appendFloats(b, s.ICT)
	b = appendFloats(b, s.Size)
	b = appendExtras(b, s.ExtraICT)
	b = appendExtras(b, s.ExtraSize)

	b = appendU32(b, uint32(len(s.BusWidth)))
	for i := range s.BusWidth {
		b = appendU32(b, uint32(s.BusWidth[i]))
		b = appendU64(b, math.Float64bits(s.BusTS[i]))
		b = appendU64(b, math.Float64bits(s.BusTD[i]))
	}

	b = appendU32(b, uint32(len(s.ChanSrc)))
	for i := range s.ChanSrc {
		b = appendU32(b, uint32(s.ChanSrc[i]))
		b = appendU32(b, uint32(s.ChanDst[i]))
		b = appendU64(b, math.Float64bits(s.ChanFreq[i]))
		b = appendU64(b, math.Float64bits(s.ChanMin[i]))
		b = appendU64(b, math.Float64bits(s.ChanMax[i]))
		b = appendU32(b, uint32(s.ChanBits[i]))
		b = appendU32(b, uint32(s.ChanTag[i]))
	}

	b = appendInts(b, s.OutStart)
	b = appendInts(b, s.OutChan)
	b = appendInts(b, s.InStart)
	b = appendInts(b, s.InChan)

	b = appendStrings(b, s.NodeNames)
	b = appendStrings(b, s.PortNames)
	b = appendStrings(b, s.CompNames)
	b = appendStrings(b, s.BusNames)
	b = appendStrings(b, s.TypeNames)
	return b, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendU32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendInts(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

func appendFloats(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, math.Float64bits(v))
	}
	return b
}

func appendExtras(b []byte, vs []ExtraWeight) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v.Node))
		b = appendU32(b, uint32(v.Type))
		b = appendU64(b, math.Float64bits(v.W))
	}
	return b
}
