// This file holds the in-place surgery helpers behind the incremental
// rebuild: a copy-on-write graph copy, a contiguous per-behavior channel
// splice, and a targeted index repair that costs one pointer scan instead
// of the full map rebuild Reindex performs. The discipline they support:
// the exported slices are the truth, shared element structs are never
// mutated (replaced wholesale instead), and after direct slice surgery the
// caller names the touched elements so only their index entries are
// repaired.

package core

import (
	"fmt"
	"maps"
)

// ShallowClone returns a copy-on-write copy of the graph: the Nodes, Ports
// and Channels slices are fresh, the element structs they hold are shared
// with the original, and the lookup indexes are bucket-copied. Component
// sets are not copied (the copy is the pre-allocation form, like
// Clone(false)).
//
// The contract is strict: a caller must never mutate a shared struct —
// patch by replacing g.Nodes[i] / splicing g.Channels with fresh structs,
// then repair the indexes with ReindexNodes (or Reindex). Under that
// discipline the original graph stays fully intact, so readers of the old
// graph (estimators, concurrent searches) race with nothing.
func (g *Graph) ShallowClone() *Graph {
	ng := &Graph{
		Name:       g.Name,
		Nodes:      append([]*Node(nil), g.Nodes...),
		Ports:      append([]*Port(nil), g.Ports...),
		Channels:   append([]*Channel(nil), g.Channels...),
		nodeByName: maps.Clone(g.nodeByName),
		portByName: maps.Clone(g.portByName),
		chanByKey:  maps.Clone(g.chanByKey),
		outgoing:   maps.Clone(g.outgoing),
		incoming:   maps.Clone(g.incoming),
	}
	// A nil map survives maps.Clone as nil; normalize so later repairs can
	// write. (Graphs built by NewGraph always have maps.)
	if ng.nodeByName == nil {
		ng.nodeByName = make(map[string]*Node)
	}
	if ng.portByName == nil {
		ng.portByName = make(map[string]*Port)
	}
	if ng.chanByKey == nil {
		ng.chanByKey = make(map[string]*Channel)
	}
	if ng.outgoing == nil {
		ng.outgoing = make(map[*Node][]*Channel)
	}
	if ng.incoming == nil {
		ng.incoming = make(map[string][]*Channel)
	}
	return ng
}

// SpliceBehChans replaces the contiguous block of channels whose source
// node is named src with repl, splicing repl in at the block's position.
// When the source currently has no channels, repl is inserted where the
// builder would have placed it: after every channel of source nodes that
// precede src in Nodes order. The graphs the builder produces always keep
// one contiguous block per source, in node order; a non-contiguous source
// is reported as an error.
//
// Only the Channels slice is edited. Lookup indexes go stale; the caller
// must ReindexNodes (naming src and every old and new destination) or
// Reindex before the next lookup.
func (g *Graph) SpliceBehChans(src string, repl []*Channel) error {
	first, last := -1, -1
	for i, c := range g.Channels {
		if c.Src.Name != src {
			continue
		}
		if first < 0 {
			first = i
		} else if i != last+1 {
			return fmt.Errorf("slif: channels of %q are not contiguous", src)
		}
		last = i
	}
	if first < 0 {
		// No existing block: find the insertion point from node order.
		order := make(map[string]int, len(g.Nodes))
		for i, n := range g.Nodes {
			order[n.Name] = i
		}
		si, ok := order[src]
		if !ok {
			return fmt.Errorf("slif: splice source %q not in graph", src)
		}
		first = len(g.Channels)
		for i, c := range g.Channels {
			if order[c.Src.Name] > si {
				first = i
				break
			}
		}
		last = first - 1
	}
	out := make([]*Channel, 0, len(g.Channels)-(last-first+1)+len(repl))
	out = append(out, g.Channels[:first]...)
	out = append(out, repl...)
	out = append(out, g.Channels[last+1:]...)
	g.Channels = out
	return nil
}

// ReindexNodes repairs the lookup indexes for the named nodes and ports
// after direct slice surgery — replacing a node struct at the same name,
// splicing channel blocks, or removing an element. The slices must already
// be consistent (every channel endpoint struct is present in Nodes/Ports);
// ReindexNodes then makes the indexes agree with them, touching only
// entries that involve a named element. Unlike Reindex it rebuilds no
// unrelated entry: the cost is the stale-entry cleanup plus one pointer
// scan over Channels, with map writes only for the named slice.
func (g *Graph) ReindexNodes(names ...string) {
	if len(names) == 0 {
		return
	}
	named := make(map[string]bool, len(names))
	for _, n := range names {
		named[n] = true
	}
	// Drop the stale state reachable from the old index entries. The old
	// adjacency lists enumerate exactly the channels whose keyed entries
	// may now be dead; live ones are re-added below.
	for name := range named {
		if old := g.nodeByName[name]; old != nil {
			for _, c := range g.outgoing[old] {
				delete(g.chanByKey, c.Key())
			}
			delete(g.outgoing, old)
		}
		for _, c := range g.incoming[name] {
			delete(g.chanByKey, c.Key())
		}
		delete(g.incoming, name)
	}
	// Refresh name → struct from the slices; names no longer present lose
	// their entries.
	found := make(map[string]bool, len(named))
	for _, n := range g.Nodes {
		if named[n.Name] {
			g.nodeByName[n.Name] = n
			found[n.Name] = true
		}
	}
	for _, p := range g.Ports {
		if named[p.Name] {
			g.portByName[p.Name] = p
			found[p.Name] = true
		}
	}
	for name := range named {
		if !found[name] {
			delete(g.nodeByName, name)
			delete(g.portByName, name)
		}
	}
	// One ordered scan rebuilds the channel indexes for every channel that
	// touches a named element. Order is preserved: adjacency lists come
	// out in Channels order, as Reindex would produce.
	for _, c := range g.Channels {
		srcNamed := named[c.Src.Name]
		dstNamed := named[c.Dst.EndpointName()]
		if !srcNamed && !dstNamed {
			continue
		}
		g.chanByKey[c.Key()] = c
		if srcNamed {
			g.outgoing[c.Src] = append(g.outgoing[c.Src], c)
		}
		if dstNamed {
			g.incoming[c.Dst.EndpointName()] = append(g.incoming[c.Dst.EndpointName()], c)
		}
	}
}
