package core

import (
	"fmt"
	"sort"
	"strings"
)

// Partition maps functional objects to system components per §2.2: each
// behavior to a processor, each variable to a processor or memory, and each
// channel to a bus. The zero value is not usable; call NewPartition.
type Partition struct {
	g       *Graph
	bvComp  map[*Node]Component
	chanBus map[*Channel]*Bus
}

// NewPartition returns an empty partition over g.
func NewPartition(g *Graph) *Partition {
	return &Partition{
		g:       g,
		bvComp:  make(map[*Node]Component),
		chanBus: make(map[*Channel]*Bus),
	}
}

// Graph returns the graph the partition is over.
func (pt *Partition) Graph() *Graph { return pt.g }

// Assign maps a node to a component, replacing any previous mapping.
// Behaviors may only be assigned to processors.
func (pt *Partition) Assign(n *Node, c Component) error {
	if n.IsBehavior() {
		if _, ok := c.(*Processor); !ok {
			return fmt.Errorf("partition: behavior %q may only map to a processor, not %q", n.Name, c.CompName())
		}
	}
	pt.bvComp[n] = c
	return nil
}

// AssignChan maps a channel to a bus, replacing any previous mapping.
func (pt *Partition) AssignChan(c *Channel, b *Bus) { pt.chanBus[c] = b }

// BvComp implements GetBvComp(bv) of §3.1: the component the node is mapped
// to, or nil if unmapped.
func (pt *Partition) BvComp(n *Node) Component { return pt.bvComp[n] }

// ChanBus implements GetChanBus(c) of §3.1: the bus the channel is mapped
// to, or nil if unmapped.
func (pt *Partition) ChanBus(c *Channel) *Bus { return pt.chanBus[c] }

// BvIct implements GetBvIct(bv, pm) of §3.1: the node's ict weight on the
// component's type. The boolean reports whether a weight exists.
func (pt *Partition) BvIct(n *Node, c Component) (float64, bool) {
	v, ok := n.ICT[c.TypeKey()]
	return v, ok
}

// BvSize implements GetBvSize(bv, pm) of §3.3.
func (pt *Partition) BvSize(n *Node, c Component) (float64, bool) {
	v, ok := n.Size[c.TypeKey()]
	return v, ok
}

// NodesOn returns the nodes mapped to component c (the p.BV / m.V sets of
// §2.2), in graph insertion order.
func (pt *Partition) NodesOn(c Component) []*Node {
	var out []*Node
	for _, n := range pt.g.Nodes {
		if pt.bvComp[n] == c {
			out = append(out, n)
		}
	}
	return out
}

// ChansOn returns the channels mapped to bus b (the i.C set of §2.2).
func (pt *Partition) ChansOn(b *Bus) []*Channel {
	var out []*Channel
	for _, c := range pt.g.Channels {
		if pt.chanBus[c] == b {
			out = append(out, c)
		}
	}
	return out
}

// DstComp returns the component of a channel's destination, or nil when the
// destination is an external port (ports belong to no component).
func (pt *Partition) DstComp(c *Channel) Component {
	if n, ok := c.Dst.(*Node); ok {
		return pt.bvComp[n]
	}
	return nil
}

// CutChans implements CutChans(p) of §3.4: channels with exactly one
// endpoint on component c. Channels to external ports count as cut when
// their source is on c, since the port is outside every component.
func (pt *Partition) CutChans(c Component) []*Channel {
	var out []*Channel
	for _, ch := range pt.g.Channels {
		srcOn := pt.bvComp[ch.Src] == c
		dstOn := pt.DstComp(ch) == c
		if _, isPort := ch.Dst.(*Port); isPort {
			dstOn = false
		}
		if srcOn != dstOn {
			out = append(out, ch)
		}
	}
	return out
}

// CutBuses implements CutBuses(p) of §3.4: buses carrying at least one cut
// channel of component c. Each bus appears once.
func (pt *Partition) CutBuses(c Component) []*Bus {
	seen := map[*Bus]bool{}
	var out []*Bus
	for _, ch := range pt.CutChans(c) {
		b := pt.chanBus[ch]
		if b != nil && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// Validate checks the §2.2 proper-partition rules: every node is mapped to
// exactly one component of a legal class, and every channel is mapped to
// exactly one bus. All violations are reported, joined into one error.
func (pt *Partition) Validate() error {
	var probs []string
	for _, n := range pt.g.Nodes {
		c, ok := pt.bvComp[n]
		switch {
		case !ok || c == nil:
			probs = append(probs, fmt.Sprintf("node %q is unmapped", n.Name))
		case n.IsBehavior():
			if _, isP := c.(*Processor); !isP {
				probs = append(probs, fmt.Sprintf("behavior %q mapped to non-processor %q", n.Name, c.CompName()))
			}
		}
	}
	for _, ch := range pt.g.Channels {
		if pt.chanBus[ch] == nil {
			probs = append(probs, fmt.Sprintf("channel %s is unmapped", ch.Key()))
		}
	}
	// Stale mappings (nodes or channels not in the graph) indicate misuse.
	for n := range pt.bvComp {
		if pt.g.nodeByName[n.Name] != n {
			probs = append(probs, fmt.Sprintf("mapping for foreign node %q", n.Name))
		}
	}
	for ch := range pt.chanBus {
		if pt.g.chanByKey[ch.Key()] != ch {
			probs = append(probs, fmt.Sprintf("mapping for foreign channel %s", ch.Key()))
		}
	}
	if len(probs) > 0 {
		sort.Strings(probs)
		return fmt.Errorf("partition: %s", strings.Join(probs, "; "))
	}
	return nil
}

// Clone returns an independent copy of the partition (same graph).
func (pt *Partition) Clone() *Partition {
	np := NewPartition(pt.g)
	for n, c := range pt.bvComp {
		np.bvComp[n] = c
	}
	for ch, b := range pt.chanBus {
		np.chanBus[ch] = b
	}
	return np
}

// String renders the partition as stable, diff-friendly text.
func (pt *Partition) String() string {
	var sb strings.Builder
	for _, c := range pt.g.Components() {
		names := make([]string, 0, 8)
		for _, n := range pt.NodesOn(c) {
			names = append(names, n.Name)
		}
		fmt.Fprintf(&sb, "%s: {%s}\n", c.CompName(), strings.Join(names, ", "))
	}
	for _, b := range pt.g.Buses {
		keys := make([]string, 0, 8)
		for _, ch := range pt.ChansOn(b) {
			keys = append(keys, ch.Key())
		}
		fmt.Fprintf(&sb, "%s: {%s}\n", b.Name, strings.Join(keys, ", "))
	}
	return sb.String()
}

// AllToProcessor maps every node to the processor and every channel to the
// bus — the canonical all-software starting point for partitioning.
func AllToProcessor(g *Graph, p *Processor, bus *Bus) *Partition {
	pt := NewPartition(g)
	for _, n := range g.Nodes {
		pt.bvComp[n] = p
	}
	for _, c := range g.Channels {
		pt.chanBus[c] = bus
	}
	return pt
}
