package core

import (
	"fmt"
	"math"
)

// UnmarshalBinary decodes a MarshalBinary image into s, replacing its
// contents. The decoder is strict: a wrong magic, a truncated or oversized
// section, an out-of-range ID, an inconsistent CSR table, or trailing
// bytes all fail with an error and never panic — the session store feeds
// it checkpoint files that may have been torn by a crash, and the fuzzer
// feeds it anything at all. On success the decoded snapshot re-marshals
// byte-identically, which is what pins the round-trip in tests.
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	d := &decoder{b: data}
	if !d.magic(snapMagic) {
		return fmt.Errorf("slif: snapshot decode: bad magic (want %q v2)", "SLIFSNAP")
	}
	var ns Snapshot
	ns.Name = d.str()
	ns.NumProcs = int(d.u32())

	nn := d.count(9) // kind byte + storage u64 per node
	ns.NodeKind = make([]NodeKind, nn)
	ns.IsProcess = make([]bool, nn)
	ns.Storage = make([]int64, nn)
	for i := 0; i < nn; i++ {
		k := d.byte()
		ns.IsProcess[i] = k&0x80 != 0
		ns.NodeKind[i] = NodeKind(k & 0x7f)
		if ns.NodeKind[i] > VariableNode {
			d.fail("node %d has unknown kind %d", i, ns.NodeKind[i])
		}
		ns.Storage[i] = int64(d.u64())
	}

	np := d.count(5) // dir byte + bits u32 per port
	ns.PortDir = make([]PortDir, np)
	ns.PortBits = make([]int32, np)
	for i := 0; i < np; i++ {
		ns.PortDir[i] = PortDir(d.byte())
		if ns.PortDir[i] > InOut {
			d.fail("port %d has unknown direction %d", i, ns.PortDir[i])
		}
		ns.PortBits[i] = int32(d.u32())
	}

	nc := d.count(17) // flag byte + sizecon u64 + pincon u32 + type u32
	ns.CompCustom = make([]bool, nc)
	ns.CompSizeCon = make([]float64, nc)
	ns.CompPinCon = make([]int32, nc)
	ns.CompType = make([]int32, nc)
	for i := 0; i < nc; i++ {
		flag := d.byte()
		if flag > 1 {
			d.fail("component %d has flag byte %d", i, flag)
		}
		ns.CompCustom[i] = flag == 1
		ns.CompSizeCon[i] = math.Float64frombits(d.u64())
		ns.CompPinCon[i] = int32(d.u32())
		ns.CompType[i] = int32(d.u32())
	}
	if ns.NumProcs < 0 || ns.NumProcs > nc {
		d.fail("NumProcs %d outside the %d components", ns.NumProcs, nc)
	}

	ns.ICT = d.floats()
	ns.Size = d.floats()
	if len(ns.ICT) != nn*nc || len(ns.Size) != nn*nc {
		d.fail("weight tables are %d/%d entries, want %d×%d", len(ns.ICT), len(ns.Size), nn, nc)
	}
	ns.ExtraICT = d.extras(nn)
	ns.ExtraSize = d.extras(nn)

	nb := d.count(20) // width u32 + ts/td u64
	ns.BusWidth = make([]int32, nb)
	ns.BusTS = make([]float64, nb)
	ns.BusTD = make([]float64, nb)
	for i := 0; i < nb; i++ {
		ns.BusWidth[i] = int32(d.u32())
		ns.BusTS[i] = math.Float64frombits(d.u64())
		ns.BusTD[i] = math.Float64frombits(d.u64())
	}

	nch := d.count(40) // src/dst u32 + freq/min/max u64 + bits/tag u32
	ns.ChanSrc = make([]int32, nch)
	ns.ChanDst = make([]int32, nch)
	ns.ChanFreq = make([]float64, nch)
	ns.ChanMin = make([]float64, nch)
	ns.ChanMax = make([]float64, nch)
	ns.ChanBits = make([]int32, nch)
	ns.ChanTag = make([]int32, nch)
	for i := 0; i < nch; i++ {
		ns.ChanSrc[i] = int32(d.u32())
		ns.ChanDst[i] = int32(d.u32())
		ns.ChanFreq[i] = math.Float64frombits(d.u64())
		ns.ChanMin[i] = math.Float64frombits(d.u64())
		ns.ChanMax[i] = math.Float64frombits(d.u64())
		ns.ChanBits[i] = int32(d.u32())
		ns.ChanTag[i] = int32(d.u32())
		if s := ns.ChanSrc[i]; s < 0 || int(s) >= nn {
			d.fail("channel %d source %d outside %d nodes", i, s, nn)
		}
		if dst := ns.ChanDst[i]; int(dst) >= nn || (dst < 0 && int(-dst-1) >= np) {
			d.fail("channel %d destination %d outside %d nodes / %d ports", i, dst, nn, np)
		}
	}

	ns.OutStart = d.ints()
	ns.OutChan = d.ints()
	ns.InStart = d.ints()
	ns.InChan = d.ints()
	if len(ns.OutStart) != nn+1 || len(ns.InStart) != nn+1 ||
		len(ns.OutChan) != nch || len(ns.InChan) > nch {
		d.fail("CSR tables sized %d/%d/%d/%d for %d nodes, %d channels",
			len(ns.OutStart), len(ns.OutChan), len(ns.InStart), len(ns.InChan), nn, nch)
	}
	checkCSR := func(start, chans []int32, what string) {
		if d.err != nil || len(start) == 0 {
			return
		}
		if start[0] != 0 || int(start[len(start)-1]) != len(chans) {
			d.fail("%s CSR does not span its channel list", what)
		}
		for i := 1; i < len(start); i++ {
			if start[i] < start[i-1] {
				d.fail("%s CSR offsets not monotonic at node %d", what, i-1)
				return
			}
		}
		for _, ci := range chans {
			if ci < 0 || int(ci) >= nch {
				d.fail("%s CSR references channel %d of %d", what, ci, nch)
				return
			}
		}
	}
	checkCSR(ns.OutStart, ns.OutChan, "out")
	checkCSR(ns.InStart, ns.InChan, "in")

	ns.NodeNames = d.strs()
	ns.PortNames = d.strs()
	ns.CompNames = d.strs()
	ns.BusNames = d.strs()
	ns.TypeNames = d.strs()
	if len(ns.NodeNames) != nn || len(ns.PortNames) != np ||
		len(ns.CompNames) != nc || len(ns.BusNames) != nb {
		d.fail("name tables do not match the object counts")
	}
	nt := len(ns.TypeNames)
	for i, t := range ns.CompType {
		if t < 0 || int(t) >= nt {
			d.fail("component %d has type ID %d of %d", i, t, nt)
		}
	}
	for _, e := range append(append([]ExtraWeight{}, ns.ExtraICT...), ns.ExtraSize...) {
		if e.Type < 0 || int(e.Type) >= nt {
			d.fail("extra weight on node %d has type ID %d of %d", e.Node, e.Type, nt)
		}
	}
	if d.err == nil && len(d.b) != d.off {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return d.err
	}

	ns.nodeID = internIDs(ns.NodeNames)
	ns.portID = internIDs(ns.PortNames)
	ns.compID = internIDs(ns.CompNames)
	ns.busID = internIDs(ns.BusNames)
	*s = ns
	return nil
}

func internIDs(names []string) map[string]int32 {
	m := make(map[string]int32, len(names))
	for i, n := range names {
		m[n] = int32(i)
	}
	return m
}

// decoder is a cursor over a snapshot image. The first failure sticks;
// every accessor after it returns zero values, so decode loops need no
// per-read error checks. count/str bound every allocation by the bytes
// actually remaining, so a hostile length prefix cannot balloon memory.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("slif: snapshot decode: "+format, args...)
	}
}

func (d *decoder) magic(m string) bool {
	if len(d.b) < len(m) || string(d.b[:len(m)]) != m {
		return false
	}
	d.off = len(m)
	return true
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	b := d.b[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *decoder) u64() uint64 {
	lo := uint64(d.u32())
	return lo | uint64(d.u32())<<32
}

// count reads a section length and rejects any that could not fit in the
// remaining bytes at elemSize bytes per element.
func (d *decoder) count(elemSize int) int {
	n := d.u32()
	if d.err == nil && int(n) > (len(d.b)-d.off)/elemSize {
		d.fail("section of %d elements does not fit in %d bytes", n, len(d.b)-d.off)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) strs() []string {
	n := d.count(4) // at least a length prefix per string
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *decoder) ints() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

func (d *decoder) floats() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	return out
}

func (d *decoder) extras(numNodes int) []ExtraWeight {
	n := d.count(16)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]ExtraWeight, n)
	for i := range out {
		out[i] = ExtraWeight{Node: int32(d.u32()), Type: int32(d.u32()), W: math.Float64frombits(d.u64())}
		if e := out[i]; d.err == nil && (e.Node < 0 || int(e.Node) >= numNodes) {
			d.fail("extra weight %d on node %d of %d", i, e.Node, numNodes)
		}
	}
	return out
}

// Decompile lifts a Snapshot back into a pointer Graph — the inverse of
// Compile, used by the session store to restore a checkpointed design
// without re-running the front end. The reconstruction preserves object
// order exactly, so recompiling the result is byte-identical to the
// snapshot it came from (pinned by TestDecompileRoundTrip), and every
// estimate over the restored graph reproduces the original bit for bit.
// Snapshots decoded from untrusted bytes may still violate graph
// invariants (duplicate names, non-behavior channel sources); Decompile
// routes construction through the Graph's validating Add helpers so those
// come back as errors, never as a corrupt graph.
func Decompile(s *Snapshot) (*Graph, error) {
	g := NewGraph(s.Name)
	nn, np := s.NumNodes(), len(s.PortNames)
	nc := s.NumComps()
	for i := 0; i < nn; i++ {
		n := &Node{
			Name:        s.NodeNames[i],
			Kind:        s.NodeKind[i],
			IsProcess:   s.IsProcess[i],
			StorageBits: s.Storage[i],
		}
		for ci := 0; ci < nc; ci++ {
			t := s.TypeNames[s.CompType[ci]]
			if w := s.ICT[i*nc+ci]; !math.IsNaN(w) {
				n.SetICT(t, w)
			}
			if w := s.Size[i*nc+ci]; !math.IsNaN(w) {
				n.SetSize(t, w)
			}
		}
		if err := g.AddNode(n); err != nil {
			return nil, fmt.Errorf("slif: decompile: %w", err)
		}
	}
	for _, e := range s.ExtraICT {
		g.Nodes[e.Node].SetICT(s.TypeNames[e.Type], e.W)
	}
	for _, e := range s.ExtraSize {
		g.Nodes[e.Node].SetSize(s.TypeNames[e.Type], e.W)
	}
	for i := 0; i < np; i++ {
		p := &Port{Name: s.PortNames[i], Dir: s.PortDir[i], Bits: int(s.PortBits[i])}
		if err := g.AddPort(p); err != nil {
			return nil, fmt.Errorf("slif: decompile: %w", err)
		}
	}
	for i := 0; i < nc; i++ {
		t := s.TypeNames[s.CompType[i]]
		if i < s.NumProcs {
			g.AddProcessor(&Processor{
				Name: s.CompNames[i], TypeName: t, Custom: s.CompCustom[i],
				SizeCon: s.CompSizeCon[i], PinCon: int(s.CompPinCon[i]),
			})
		} else {
			g.AddMemory(&Memory{Name: s.CompNames[i], TypeName: t, SizeCon: s.CompSizeCon[i]})
		}
	}
	for i := range s.BusWidth {
		g.AddBus(&Bus{
			Name: s.BusNames[i], BitWidth: int(s.BusWidth[i]),
			TS: s.BusTS[i], TD: s.BusTD[i],
		})
	}
	for ci := range s.ChanSrc {
		var dst Endpoint
		if di := s.ChanDst[ci]; di >= 0 {
			dst = g.Nodes[di]
		} else {
			dst = g.Ports[-di-1]
		}
		c := &Channel{
			Src: g.Nodes[s.ChanSrc[ci]], Dst: dst,
			AccFreq: s.ChanFreq[ci], AccMin: s.ChanMin[ci], AccMax: s.ChanMax[ci],
			Bits: int(s.ChanBits[ci]), Tag: int(s.ChanTag[ci]),
		}
		if err := g.AddChannel(c); err != nil {
			return nil, fmt.Errorf("slif: decompile: %w", err)
		}
	}
	return g, nil
}
