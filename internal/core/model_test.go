package core

import (
	"testing"
)

// tinyGraph builds the small SLIF used across the core tests:
//
//	main (process) ── f=2,b=32 ──▶ sub ── f=10,b=15 ──▶ arr (variable)
//	main ── f=1,b=8 ──▶ v (variable)
//	main ── f=1,b=8 ──▶ out1 (port)
//
// with a cpu (proc10), an asic (asic50), a memory and one bus.
func tinyGraph(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph("tiny")
	main := &Node{Name: "main", Kind: BehaviorNode, IsProcess: true}
	sub := &Node{Name: "sub", Kind: BehaviorNode}
	v := &Node{Name: "v", Kind: VariableNode, StorageBits: 8}
	arr := &Node{Name: "arr", Kind: VariableNode, StorageBits: 1024}
	for _, n := range []*Node{main, sub, v, arr} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	out1 := &Port{Name: "out1", Dir: Out, Bits: 8}
	if err := g.AddPort(out1); err != nil {
		t.Fatal(err)
	}
	chans := []*Channel{
		{Src: main, Dst: sub, AccFreq: 2, AccMin: 0, AccMax: 2, Bits: 32, Tag: NoTag},
		{Src: sub, Dst: arr, AccFreq: 10, AccMin: 0, AccMax: 20, Bits: 15, Tag: NoTag},
		{Src: main, Dst: v, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 8, Tag: NoTag},
		{Src: main, Dst: out1, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 8, Tag: NoTag},
	}
	for _, c := range chans {
		if err := g.AddChannel(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*Node{main, sub} {
		n.SetICT("proc10", 10)
		n.SetICT("asic50", 1)
		n.SetSize("proc10", 100)
		n.SetSize("asic50", 800)
	}
	for _, n := range []*Node{v, arr} {
		n.SetICT("proc10", 0.2)
		n.SetICT("asic50", 0.02)
		n.SetICT("sram8", 0.1)
		n.SetSize("proc10", float64(n.StorageBits/8))
		n.SetSize("asic50", float64(n.StorageBits*8))
		n.SetSize("sram8", float64(n.StorageBits/8))
	}
	g.AddProcessor(&Processor{Name: "cpu", TypeName: "proc10", SizeCon: 4096, PinCon: 40})
	g.AddProcessor(&Processor{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 100000, PinCon: 64})
	g.AddMemory(&Memory{Name: "ram", TypeName: "sram8", SizeCon: 2048})
	g.AddBus(&Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphLookups(t *testing.T) {
	g := tinyGraph(t)
	if g.NodeByName("main") == nil || g.NodeByName("nothing") != nil {
		t.Error("NodeByName broken")
	}
	if g.PortByName("out1") == nil {
		t.Error("PortByName broken")
	}
	if g.FindChannel("main", "sub") == nil || g.FindChannel("sub", "main") != nil {
		t.Error("FindChannel broken")
	}
	if got := len(g.BehChans(g.NodeByName("main"))); got != 3 {
		t.Errorf("BehChans(main) = %d, want 3", got)
	}
	if got := len(g.InChans("arr")); got != 1 {
		t.Errorf("InChans(arr) = %d, want 1", got)
	}
	if g.ProcByName("cpu") == nil || g.MemByName("ram") == nil || g.BusByName("bus") == nil {
		t.Error("component lookups broken")
	}
	if len(g.Behaviors()) != 2 || len(g.Variables()) != 2 || len(g.Processes()) != 1 {
		t.Error("node classification broken")
	}
	st := g.Stats()
	if st.BV != 4 || st.IO != 1 || st.Channels != 4 {
		t.Errorf("stats: %+v", st)
	}
}

func TestAddRejectsDuplicatesAndForeign(t *testing.T) {
	g := tinyGraph(t)
	if err := g.AddNode(&Node{Name: "main"}); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := g.AddPort(&Port{Name: "main"}); err == nil {
		t.Error("port colliding with node accepted")
	}
	main := g.NodeByName("main")
	sub := g.NodeByName("sub")
	if err := g.AddChannel(&Channel{Src: main, Dst: sub}); err == nil {
		t.Error("duplicate channel accepted")
	}
	foreign := &Node{Name: "ghost", Kind: BehaviorNode}
	if err := g.AddChannel(&Channel{Src: foreign, Dst: sub}); err == nil {
		t.Error("channel with foreign source accepted")
	}
	v := g.NodeByName("v")
	if err := g.AddChannel(&Channel{Src: v, Dst: sub}); err == nil {
		t.Error("channel with variable source accepted")
	}
}

func TestValidateCatchesBadAnnotations(t *testing.T) {
	g := tinyGraph(t)
	g.FindChannel("main", "v").AccFreq = -1
	if err := g.Validate(); err == nil {
		t.Error("negative accfreq accepted")
	}
	g.FindChannel("main", "v").AccFreq = 1

	g.NodeByName("main").SetICT("proc10", -5)
	if err := g.Validate(); err == nil {
		t.Error("negative ict accepted")
	}
	g.NodeByName("main").SetICT("proc10", 10)

	g.Buses[0].BitWidth = 0
	if err := g.Validate(); err == nil {
		t.Error("zero bus width accepted")
	}
	g.Buses[0].BitWidth = 16
	if err := g.Validate(); err != nil {
		t.Errorf("restored graph invalid: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := tinyGraph(t)
	c := g.Clone(true)
	if c.Stats() != g.Stats() {
		t.Fatalf("clone stats %+v != %+v", c.Stats(), g.Stats())
	}
	// Mutating the clone must not touch the original.
	c.NodeByName("main").SetICT("proc10", 999)
	c.FindChannel("main", "sub").AccFreq = 77
	if g.NodeByName("main").ICT["proc10"] == 999 {
		t.Error("clone shares node annotation maps")
	}
	if g.FindChannel("main", "sub").AccFreq == 77 {
		t.Error("clone shares channels")
	}
	bare := g.Clone(false)
	if len(bare.Procs)+len(bare.Mems)+len(bare.Buses) != 0 {
		t.Error("Clone(false) kept components")
	}
}

func TestRemoveNode(t *testing.T) {
	g := tinyGraph(t)
	sub := g.NodeByName("sub")
	g.RemoveNode(sub)
	if g.NodeByName("sub") != nil {
		t.Fatal("node still present")
	}
	if g.FindChannel("main", "sub") != nil || g.FindChannel("sub", "arr") != nil {
		t.Error("incident channels not removed")
	}
	if got := g.Stats(); got.BV != 3 || got.Channels != 2 {
		t.Errorf("after removal: %+v", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph invalid after removal: %v", err)
	}
	// Removing again is a no-op.
	g.RemoveNode(sub)
	if got := g.Stats(); got.BV != 3 {
		t.Error("double removal changed the graph")
	}
}

func TestRemoveChannel(t *testing.T) {
	g := tinyGraph(t)
	c := g.FindChannel("main", "v")
	g.RemoveChannel(c)
	if g.FindChannel("main", "v") != nil {
		t.Fatal("channel still present")
	}
	if got := len(g.BehChans(g.NodeByName("main"))); got != 2 {
		t.Errorf("outgoing index stale: %d", got)
	}
	if got := len(g.InChans("v")); got != 0 {
		t.Errorf("incoming index stale: %d", got)
	}
}

func TestComponentsOrder(t *testing.T) {
	g := tinyGraph(t)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	if comps[0].CompName() != "cpu" || comps[2].CompName() != "ram" {
		t.Errorf("order: %v, %v, %v", comps[0].CompName(), comps[1].CompName(), comps[2].CompName())
	}
	if comps[0].TypeKey() != "proc10" {
		t.Errorf("TypeKey = %q", comps[0].TypeKey())
	}
}

func TestSortedCompTypes(t *testing.T) {
	g := tinyGraph(t)
	got := g.SortedCompTypes()
	want := []string{"asic50", "proc10", "sram8"}
	if len(got) != len(want) {
		t.Fatalf("types %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("types[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
