package core

import (
	"bytes"
	"math"
	"testing"
)

// TestCompileShape pins the snapshot layout on the reference graph: ID
// assignment, CSR adjacency mirroring BehChans/InChans, port-destination
// encoding, NaN-coded weight tables, and sorted type interning.
func TestCompileShape(t *testing.T) {
	g := tinyGraph(t)
	s, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 4 || s.NumChans() != 4 || s.NumComps() != 3 || s.NumBuses() != 1 {
		t.Fatalf("counts = %d nodes %d chans %d comps %d buses", s.NumNodes(), s.NumChans(), s.NumComps(), s.NumBuses())
	}
	if s.NumProcs != 2 || !s.IsMem(2) || s.IsMem(1) {
		t.Fatalf("NumProcs = %d, IsMem(2) = %v", s.NumProcs, s.IsMem(2))
	}
	// IDs follow slice order.
	for i, n := range g.Nodes {
		if s.NodeID(n.Name) != int32(i) || s.NodeNames[i] != n.Name {
			t.Errorf("node %q: ID %d, want %d", n.Name, s.NodeID(n.Name), i)
		}
	}
	if s.CompID("cpu") != 0 || s.CompID("asic") != 1 || s.CompID("ram") != 2 {
		t.Errorf("component IDs = %d %d %d", s.CompID("cpu"), s.CompID("asic"), s.CompID("ram"))
	}
	if s.CompID("nope") != -1 || s.NodeID("nope") != -1 || s.BusID("nope") != -1 {
		t.Error("unknown names must map to -1")
	}
	// Type interning is sorted.
	for i := 1; i < len(s.TypeNames); i++ {
		if s.TypeNames[i-1] >= s.TypeNames[i] {
			t.Fatalf("TypeNames not sorted: %v", s.TypeNames)
		}
	}
	// CSR matches the pointer adjacency, in order.
	for i, n := range g.Nodes {
		chans := g.BehChans(n)
		out := s.Out(int32(i))
		if len(out) != len(chans) {
			t.Fatalf("Out(%s) has %d channels, want %d", n.Name, len(out), len(chans))
		}
		for k, ci := range out {
			if g.Channels[ci] != chans[k] {
				t.Errorf("Out(%s)[%d] = channel %d, want %s", n.Name, k, ci, chans[k].Key())
			}
		}
		in := s.In(int32(i))
		inChans := g.InChans(n.Name)
		if len(in) != len(inChans) {
			t.Fatalf("In(%s) has %d channels, want %d", n.Name, len(in), len(inChans))
		}
		for k, ci := range in {
			if g.Channels[ci] != inChans[k] {
				t.Errorf("In(%s)[%d] = channel %d, want %s", n.Name, k, ci, inChans[k].Key())
			}
		}
	}
	// Port destination encoding and keys.
	for ci, c := range g.Channels {
		if s.ChanKey(int32(ci)) != c.Key() {
			t.Errorf("ChanKey(%d) = %q, want %q", ci, s.ChanKey(int32(ci)), c.Key())
		}
		if p, isPort := c.Dst.(*Port); isPort {
			if d := s.ChanDst[ci]; d >= 0 || s.PortNames[-d-1] != p.Name {
				t.Errorf("channel %s: ChanDst = %d, want port encoding of %q", c.Key(), s.ChanDst[ci], p.Name)
			}
		}
	}
	// Weight tables: behaviors have no sram8 weights → NaN on ram.
	mainID, ramID := s.NodeID("main"), s.CompID("ram")
	if !math.IsNaN(s.Ict(mainID, ramID)) || !math.IsNaN(s.SizeOf(mainID, ramID)) {
		t.Error("missing annotation must be NaN-coded")
	}
	if got := s.Ict(s.NodeID("sub"), s.CompID("asic")); got != 1 {
		t.Errorf("Ict(sub, asic) = %v, want 1", got)
	}
	if got := s.SizeOf(s.NodeID("arr"), s.CompID("cpu")); got != 128 {
		t.Errorf("Size(arr, cpu) = %v, want 128", got)
	}
}

// TestCompileDeterministic is the snapshot determinism guarantee:
// compiling the same graph twice — and compiling its deep clone — yields
// byte-identical serializations.
func TestCompileDeterministic(t *testing.T) {
	g := tinyGraph(t)
	s1, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := s1.MarshalBinary()
	b2, _ := s2.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("two compiles of one graph differ")
	}
	s3, err := Compile(g.Clone(true))
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := s3.MarshalBinary()
	if !bytes.Equal(b1, b3) {
		t.Fatal("compile of a clone differs from the original")
	}
}

// TestCompileStableAcrossMapOrder builds the same design twice with the
// annotation maps populated in opposite orders: ID assignment (and the
// whole snapshot) must not depend on map iteration order.
func TestCompileStableAcrossMapOrder(t *testing.T) {
	build := func(reverse bool) *Graph {
		g := NewGraph("order")
		n := &Node{Name: "b", Kind: BehaviorNode, IsProcess: true}
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		types := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
		if reverse {
			for i := len(types) - 1; i >= 0; i-- {
				n.SetICT(types[i], float64(i))
				n.SetSize(types[i], float64(i)*2)
			}
		} else {
			for i, ty := range types {
				n.SetICT(ty, float64(i))
				n.SetSize(ty, float64(i)*2)
			}
		}
		g.AddProcessor(&Processor{Name: "p", TypeName: "gamma"})
		g.AddBus(&Bus{Name: "bus", BitWidth: 8, TS: 1, TD: 2})
		return g
	}
	b1, _ := mustCompile(t, build(false)).MarshalBinary()
	b2, _ := mustCompile(t, build(true)).MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("snapshot depends on annotation-map insertion order")
	}
}

func mustCompile(t *testing.T, g *Graph) *Snapshot {
	t.Helper()
	s, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCompileRejectsInconsistentSlices: foreign channel endpoints and
// duplicate names are compile errors, not silent mis-wires.
func TestCompileRejectsInconsistentSlices(t *testing.T) {
	g := tinyGraph(t)
	foreign := &Node{Name: "ghost", Kind: BehaviorNode}
	g.Channels = append(g.Channels, &Channel{Src: foreign, Dst: g.NodeByName("v"), AccFreq: 1})
	if _, err := Compile(g); err == nil {
		t.Error("foreign channel source must fail to compile")
	}
	g2 := tinyGraph(t)
	g2.AddProcessor(&Processor{Name: "cpu", TypeName: "proc10"})
	if _, err := Compile(g2); err == nil {
		t.Error("duplicate component name must fail to compile")
	}
	g3 := tinyGraph(t)
	g3.Nodes = append(g3.Nodes, &Node{Name: "main", Kind: VariableNode})
	if _, err := Compile(g3); err == nil {
		t.Error("duplicate node name must fail to compile")
	}
}

// TestCaptureAssignment round-trips a Partition into the flat assignment
// vector.
func TestCaptureAssignment(t *testing.T) {
	g := tinyGraph(t)
	s := mustCompile(t, g)
	pt := AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
	a := NewAssignment(s)
	if err := s.Capture(pt, a); err != nil {
		t.Fatal(err)
	}
	for i := range a.NodeComp {
		if a.NodeComp[i] != s.CompID("cpu") {
			t.Fatalf("node %d captured to comp %d, want cpu", i, a.NodeComp[i])
		}
	}
	for i := range a.ChanBus {
		if a.ChanBus[i] != 0 {
			t.Fatalf("channel %d captured to bus %d, want 0", i, a.ChanBus[i])
		}
	}
	// Partial mappings stay -1.
	pt2 := NewPartition(g)
	if err := pt2.Assign(g.NodeByName("v"), g.MemByName("ram")); err != nil {
		t.Fatal(err)
	}
	if err := s.Capture(pt2, a); err != nil {
		t.Fatal(err)
	}
	if a.NodeComp[s.NodeID("v")] != s.CompID("ram") {
		t.Error("mapped node not captured")
	}
	if a.NodeComp[s.NodeID("main")] != -1 || a.ChanBus[0] != -1 {
		t.Error("unmapped objects must capture to -1")
	}
	// A mapping outside the snapshot is an error.
	pt3 := NewPartition(g)
	stray := &Processor{Name: "stray", TypeName: "proc10"}
	for _, n := range g.Nodes {
		if err := pt3.Assign(n, stray); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Capture(pt3, a); err == nil {
		t.Error("capture of a foreign component must fail")
	}
}

// TestReindexRestoresLookups is the lookup-staleness regression test: code
// that edits the graph's slices directly must be able to restore every
// index with one Reindex call, and the maintained helpers must never serve
// a removed object.
func TestReindexRestoresLookups(t *testing.T) {
	g := tinyGraph(t)

	// Direct slice surgery: a bulk builder appends without the helpers.
	extra := &Node{Name: "late", Kind: BehaviorNode}
	extra.SetICT("proc10", 1)
	g.Nodes = append(g.Nodes, extra)
	ch := &Channel{Src: extra, Dst: g.NodeByName("v"), AccFreq: 1, Bits: 8, Tag: NoTag}
	g.Channels = append(g.Channels, ch)
	if g.NodeByName("late") != nil {
		t.Fatal("lookup should miss a slice-appended node before Reindex")
	}
	g.Reindex()
	if g.NodeByName("late") != extra {
		t.Error("Reindex must index slice-appended nodes")
	}
	if got := g.BehChans(extra); len(got) != 1 || got[0] != ch {
		t.Errorf("BehChans(late) = %v after Reindex", got)
	}
	if g.FindChannel("late", "v") != ch {
		t.Error("Reindex must index slice-appended channels")
	}
	if in := g.InChans("v"); len(in) != 2 || in[1] != ch {
		t.Errorf("InChans(v) = %d channels after Reindex, want 2 ending in late->v", len(in))
	}

	// Remove-then-replace under the helpers: lookups must never serve the
	// stale pointer.
	old := g.NodeByName("sub")
	g.RemoveNode(old)
	if g.NodeByName("sub") != nil || g.FindChannel("main", "sub") != nil || g.FindChannel("sub", "arr") != nil {
		t.Fatal("lookups serve a removed node or its channels")
	}
	repl := &Node{Name: "sub", Kind: VariableNode}
	if err := g.AddNode(repl); err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("sub") != repl {
		t.Error("lookup serves the stale pointer after remove + re-add")
	}
	if chans := g.BehChans(old); len(chans) != 0 {
		t.Errorf("BehChans of a removed node = %d channels, want 0", len(chans))
	}

	// Reindex is idempotent.
	before, _ := Compile(g)
	g.Reindex()
	after, _ := Compile(g)
	b1, _ := before.MarshalBinary()
	b2, _ := after.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Error("Reindex changed the compiled form of an already-consistent graph")
	}
}
