package core

import (
	"bytes"
	"testing"
)

// weirdGraph is tinyGraph plus the edge shapes a faithful round-trip must
// carry: annotation types with no allocated component, an inout port, a
// multi-bus allocation, and a channel to a port.
func weirdGraph(t testing.TB) *Graph {
	t.Helper()
	g := tinyGraph(t)
	g.NodeByName("main").SetICT("dsp99", 3.25)
	g.NodeByName("arr").SetSize("fpga7", 12)
	if err := g.AddPort(&Port{Name: "cfg", Dir: InOut, Bits: 3}); err != nil {
		t.Fatal(err)
	}
	g.AddBus(&Bus{Name: "bus2", BitWidth: 8, TS: 0.01, TD: 0.9})
	return g
}

// TestSnapshotEncodeDecodeRoundTrip pins the durability format: a decoded
// snapshot re-marshals byte-identically and serves the same lookups.
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	for _, build := range []func(testing.TB) *Graph{tinyGraph, weirdGraph} {
		g := build(t)
		s := mustCompile(t, g)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dec Snapshot
		if err := dec.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		redata, err := dec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, redata) {
			t.Fatal("decoded snapshot re-marshals differently")
		}
		// The interned lookup maps must be rebuilt, not left nil.
		if dec.NodeID("main") != s.NodeID("main") || dec.CompID("cpu") != s.CompID("cpu") ||
			dec.BusID("bus") != s.BusID("bus") || dec.NodeID("nope") != -1 {
			t.Error("decoded snapshot lookups differ from the original")
		}
		if dec.ChanKey(0) != s.ChanKey(0) {
			t.Errorf("ChanKey(0) = %q, want %q", dec.ChanKey(0), s.ChanKey(0))
		}
	}
}

// TestDecompileRoundTrip is the differential pin against Compile: lifting
// a snapshot back to a Graph and recompiling it must reproduce the exact
// bytes — including port directions and annotation types no component
// uses, which only exist in the graph.
func TestDecompileRoundTrip(t *testing.T) {
	for _, build := range []func(testing.TB) *Graph{tinyGraph, weirdGraph} {
		g := build(t)
		s := mustCompile(t, g)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dec Snapshot
		if err := dec.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		g2, err := Decompile(&dec)
		if err != nil {
			t.Fatalf("Decompile: %v", err)
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("decompiled graph invalid: %v", err)
		}
		redata, err := mustCompile(t, g2).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, redata) {
			t.Fatal("Compile(Decompile(s)) is not byte-identical to s")
		}
		// Graph-level fidelity Compile alone cannot pin: port metadata.
		for i, p := range g.Ports {
			q := g2.Ports[i]
			if q.Name != p.Name || q.Dir != p.Dir || q.Bits != p.Bits {
				t.Errorf("port %d round-tripped to %+v, want %+v", i, q, p)
			}
		}
		for _, n := range g.Nodes {
			m := g2.NodeByName(n.Name)
			if len(m.ICT) != len(n.ICT) || len(m.Size) != len(n.Size) {
				t.Errorf("node %s annotations: %d/%d ict, %d/%d size",
					n.Name, len(m.ICT), len(n.ICT), len(m.Size), len(n.Size))
			}
			for k, v := range n.ICT {
				if m.ICT[k] != v {
					t.Errorf("node %s ict[%s] = %v, want %v", n.Name, k, m.ICT[k], v)
				}
			}
		}
	}
}

// TestSnapshotDecodeRejectsCorrupt drives the decoder through every torn
// prefix and a byte-flip sweep: it must error or decode cleanly, never
// panic, and never accept trailing garbage.
func TestSnapshotDecodeRejectsCorrupt(t *testing.T) {
	s := mustCompile(t, weirdGraph(t))
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Snapshot
	if err := dec.UnmarshalBinary(nil); err == nil {
		t.Error("empty input must fail")
	}
	if err := dec.UnmarshalBinary([]byte("SLIFSNAP\x01rest")); err == nil {
		t.Error("version-1 magic must be rejected")
	}
	if err := dec.UnmarshalBinary(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
	for cut := 0; cut < len(data); cut++ {
		if err := dec.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
	}
	flipped := 0
	for i := len(snapMagic); i < len(data); i++ {
		mut := append([]byte{}, data...)
		mut[i] ^= 0xff
		var m Snapshot
		if err := m.UnmarshalBinary(mut); err == nil {
			// Some flips hit float payloads or names and stay structurally
			// valid; those must still round-trip canonically.
			re, err := m.MarshalBinary()
			if err != nil || !bytes.Equal(re, mut) {
				t.Fatalf("accepted flip at byte %d does not re-marshal identically", i)
			}
			flipped++
		}
	}
	if flipped == 0 {
		t.Log("no single-byte flip survived decoding (fine: all structural)")
	}
}

// FuzzSnapshotDecode feeds the checkpoint decoder arbitrary bytes — the
// exact input a torn or bit-rotted checkpoint file produces. Invariants:
// no panic anywhere; an accepted input re-marshals byte-identically (the
// decode is canonical); and one Decompile→Compile pass is a fixed point —
// a corrupted-but-structurally-valid image may normalize once (CSR tables
// and NaN payloads Compile would never emit get rebuilt), but the
// normalized bytes must then round-trip exactly. Genuine Compile-produced
// snapshots are already at the fixed point, which TestDecompileRoundTrip
// pins byte for byte.
func FuzzSnapshotDecode(f *testing.F) {
	s, err := Compile(tinyGraph(f))
	if err != nil {
		f.Fatal(err)
	}
	seed, err := s.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(snapMagic))
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Snapshot
		if err := dec.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted snapshot fails to marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("accepted snapshot does not re-marshal byte-identically")
		}
		g, err := Decompile(&dec)
		if err != nil {
			return // e.g. duplicate names the flat form can carry
		}
		s2, err := Compile(g)
		if err != nil {
			return // e.g. duplicate component names Decompile does not police
		}
		norm, err := s2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// The normalized image is a fixed point of decode→decompile→compile.
		var dec2 Snapshot
		if err := dec2.UnmarshalBinary(norm); err != nil {
			t.Fatalf("normalized snapshot does not decode: %v", err)
		}
		g2, err := Decompile(&dec2)
		if err != nil {
			t.Fatalf("normalized snapshot does not decompile: %v", err)
		}
		s3, err := Compile(g2)
		if err != nil {
			t.Fatalf("normalized snapshot does not recompile: %v", err)
		}
		again, err := s3.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(norm, again) {
			t.Fatal("Decompile→Compile is not idempotent")
		}
	})
}
