package core

import (
	"bytes"
	"testing"
)

// blockGraph builds a graph shaped the way the builder emits them: one
// contiguous channel block per source behavior, blocks in node order.
//
//	a ─▶ b, a ─▶ v │ b ─▶ c, b ─▶ w, b ─▶ p │ c ─▶ v
func blockGraph(t testing.TB) *Graph {
	t.Helper()
	g := NewGraph("blocks")
	a := &Node{Name: "a", Kind: BehaviorNode, IsProcess: true}
	b := &Node{Name: "b", Kind: BehaviorNode}
	c := &Node{Name: "c", Kind: BehaviorNode}
	v := &Node{Name: "v", Kind: VariableNode, StorageBits: 32}
	w := &Node{Name: "w", Kind: VariableNode, StorageBits: 64}
	for _, n := range []*Node{a, b, c, v, w} {
		n.SetICT("proc10", 1)
		n.SetSize("proc10", 10)
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	p := &Port{Name: "p", Dir: Out, Bits: 8}
	if err := g.AddPort(p); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []*Channel{
		{Src: a, Dst: b, AccFreq: 2, Bits: 16, Tag: NoTag},
		{Src: a, Dst: v, AccFreq: 1, Bits: 32, Tag: NoTag},
		{Src: b, Dst: c, AccFreq: 3, Bits: 8, Tag: NoTag},
		{Src: b, Dst: w, AccFreq: 4, Bits: 64, Tag: NoTag},
		{Src: b, Dst: p, AccFreq: 1, Bits: 8, Tag: NoTag},
		{Src: c, Dst: v, AccFreq: 5, Bits: 32, Tag: NoTag},
	} {
		if err := g.AddChannel(ch); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func compiledBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	s, err := Compile(g)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func TestShallowCloneSharesStructsAndIsolatesSlices(t *testing.T) {
	g := tinyGraph(t)
	cow := g.ShallowClone()
	if cow.NodeByName("main") != g.NodeByName("main") {
		t.Error("ShallowClone must share node structs")
	}
	if len(cow.Procs) != 0 || len(cow.Buses) != 0 {
		t.Error("ShallowClone must not copy components")
	}
	if !bytes.Equal(compiledBytes(t, cow), compiledBytes(t, g.Clone(false))) {
		t.Error("ShallowClone changed the compiled form")
	}
	// Replacing an element in the copy must leave the original untouched.
	repl := &Node{Name: "sub", Kind: BehaviorNode}
	repl.SetICT("proc10", 99)
	for i, n := range cow.Nodes {
		if n.Name == "sub" {
			cow.Nodes[i] = repl
		}
	}
	cow.ReindexNodes("sub")
	if cow.NodeByName("sub") != repl {
		t.Error("replacement not visible in the copy")
	}
	if g.NodeByName("sub") == repl || g.NodeByName("sub").ICT["proc10"] == 99 {
		t.Error("surgery on the copy leaked into the original")
	}
}

func TestSpliceBehChansReplacesBlock(t *testing.T) {
	g := blockGraph(t)
	b, c := g.NodeByName("b"), g.NodeByName("c")
	repl := []*Channel{
		{Src: b, Dst: c, AccFreq: 7, Bits: 8, Tag: NoTag},
		{Src: b, Dst: g.PortByName("p"), AccFreq: 2, Bits: 8, Tag: NoTag},
	}
	if err := g.SpliceBehChans("b", repl); err != nil {
		t.Fatal(err)
	}
	want := []string{"a->b", "a->v", "b->c", "b->p", "c->v"}
	if len(g.Channels) != len(want) {
		t.Fatalf("%d channels after splice, want %d", len(g.Channels), len(want))
	}
	for i, k := range want {
		if g.Channels[i].Key() != k {
			t.Errorf("channel %d = %s, want %s", i, g.Channels[i].Key(), k)
		}
	}
	if g.Channels[2] != repl[0] || g.Channels[3] != repl[1] {
		t.Error("splice kept stale channel structs in the block")
	}
}

func TestSpliceBehChansEmptyAndInsert(t *testing.T) {
	g := blockGraph(t)
	// Remove c's block entirely...
	if err := g.SpliceBehChans("c", nil); err != nil {
		t.Fatal(err)
	}
	if n := len(g.Channels); n != 5 {
		t.Fatalf("%d channels after removing c's block, want 5", n)
	}
	// ...then insert a fresh block: it must land after b's block, in node
	// order, exactly where the builder would have put it.
	c := g.NodeByName("c")
	fresh := &Channel{Src: c, Dst: g.NodeByName("w"), AccFreq: 1, Bits: 64, Tag: NoTag}
	if err := g.SpliceBehChans("c", []*Channel{fresh}); err != nil {
		t.Fatal(err)
	}
	if last := g.Channels[len(g.Channels)-1]; last != fresh {
		t.Errorf("inserted block at %s, want tail position", last.Key())
	}
	// Splicing an unknown source is an error.
	if err := g.SpliceBehChans("ghost", nil); err == nil {
		t.Error("splice of unknown source must fail")
	}
}

func TestSpliceBehChansRejectsNonContiguous(t *testing.T) {
	g := tinyGraph(t) // main's channels straddle sub's block
	if err := g.SpliceBehChans("main", nil); err == nil {
		t.Error("splice must reject a non-contiguous source block")
	}
}

// TestReindexNodesTargetedRepair is the ReindexNodes staleness regression
// test, the targeted companion of TestReindexRestoresLookups: after
// copy-on-write surgery — node struct replaced, channel block spliced —
// one ReindexNodes call naming the touched elements must leave every
// lookup exactly as a full Reindex would, without serving one stale
// pointer, and the original graph must be untouched.
func TestReindexNodesTargetedRepair(t *testing.T) {
	orig := blockGraph(t)
	origBytes := compiledBytes(t, orig)

	cow := orig.ShallowClone()
	// Replace behavior b and rebuild its channel block with one channel
	// fewer and one frequency changed.
	nb := &Node{Name: "b", Kind: BehaviorNode}
	nb.SetICT("proc10", 2)
	nb.SetSize("proc10", 20)
	for i, n := range cow.Nodes {
		if n.Name == "b" {
			cow.Nodes[i] = nb
		}
	}
	repl := []*Channel{
		{Src: nb, Dst: cow.NodeByName("c"), AccFreq: 9, Bits: 8, Tag: NoTag},
		{Src: nb, Dst: cow.PortByName("p"), AccFreq: 1, Bits: 8, Tag: NoTag},
	}
	if err := cow.SpliceBehChans("b", repl); err != nil {
		t.Fatal(err)
	}
	// a's channel a->b still points at the old struct; in a real rebuild
	// the dependent source a is rebuilt too. Do that here.
	na := &Node{Name: "a", Kind: BehaviorNode, IsProcess: true}
	na.SetICT("proc10", 1)
	na.SetSize("proc10", 10)
	for i, n := range cow.Nodes {
		if n.Name == "a" {
			cow.Nodes[i] = na
		}
	}
	replA := []*Channel{
		{Src: na, Dst: nb, AccFreq: 2, Bits: 16, Tag: NoTag},
		{Src: na, Dst: cow.NodeByName("v"), AccFreq: 1, Bits: 32, Tag: NoTag},
	}
	if err := cow.SpliceBehChans("a", replA); err != nil {
		t.Fatal(err)
	}
	// Repair naming the replaced sources and every old/new destination.
	cow.ReindexNodes("a", "b", "c", "v", "w", "p")

	// Every lookup must agree with a graph fully reindexed from the same
	// slices.
	ref := &Graph{Name: cow.Name, Nodes: cow.Nodes, Ports: cow.Ports, Channels: cow.Channels}
	ref.Reindex()
	for _, name := range []string{"a", "b", "c", "v", "w"} {
		if cow.NodeByName(name) != ref.NodeByName(name) {
			t.Errorf("NodeByName(%s) disagrees with full Reindex", name)
		}
	}
	for _, n := range cow.Nodes {
		if !n.IsBehavior() {
			continue
		}
		got, want := cow.BehChans(n), ref.BehChans(n)
		if len(got) != len(want) {
			t.Fatalf("BehChans(%s): %d channels, want %d", n.Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("BehChans(%s)[%d] disagrees with full Reindex", n.Name, i)
			}
		}
	}
	for _, name := range []string{"a", "b", "c", "v", "w", "p"} {
		got, want := cow.InChans(name), ref.InChans(name)
		if len(got) != len(want) {
			t.Fatalf("InChans(%s): %d channels, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("InChans(%s)[%d] disagrees with full Reindex", name, i)
			}
		}
	}
	for _, c := range cow.Channels {
		if cow.FindChannel(c.Src.Name, c.Dst.EndpointName()) != c {
			t.Errorf("FindChannel(%s) serves a stale pointer", c.Key())
		}
	}
	if cow.FindChannel("b", "w") != nil {
		t.Error("FindChannel serves a spliced-out channel")
	}
	if cow.NodeByName("b") != nb || cow.NodeByName("a") != na {
		t.Error("NodeByName serves a replaced struct")
	}

	// The original graph must be byte-identical to before the surgery.
	if !bytes.Equal(compiledBytes(t, orig), origBytes) {
		t.Error("copy-on-write surgery disturbed the original graph")
	}
	if orig.FindChannel("b", "w") == nil {
		t.Error("original lost a channel to surgery on the copy")
	}
}

func TestReindexNodesRemovedName(t *testing.T) {
	g := blockGraph(t)
	// Drop behavior c and its channels from the slices directly.
	if err := g.SpliceBehChans("c", nil); err != nil {
		t.Fatal(err)
	}
	for i, n := range g.Nodes {
		if n.Name == "c" {
			g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
			break
		}
	}
	// b still has a channel to c — remove it too, keeping slices coherent.
	b := g.NodeByName("b")
	var keep []*Channel
	for _, c := range g.BehChans(b) {
		if c.Dst.EndpointName() != "c" {
			keep = append(keep, c)
		}
	}
	if err := g.SpliceBehChans("b", keep); err != nil {
		t.Fatal(err)
	}
	g.ReindexNodes("b", "c", "v", "w", "p")
	if g.NodeByName("c") != nil {
		t.Error("NodeByName serves a removed node")
	}
	if g.FindChannel("c", "v") != nil || g.FindChannel("b", "c") != nil {
		t.Error("FindChannel serves channels of a removed node")
	}
	if in := g.InChans("c"); len(in) != 0 {
		t.Errorf("InChans of a removed node = %d channels, want 0", len(in))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph invalid after removal repair: %v", err)
	}
}
