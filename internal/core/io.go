package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the textual .slif exchange format. The format is
// line-based: one record per line, whitespace-separated fields, '#'
// comments. A Write followed by Read reproduces the graph (and optional
// partition) exactly; the encoding is deterministic so .slif files diff
// cleanly.
//
//	slif <name>
//	node <name> behavior|process|variable [storage <bits>]
//	ict <node> <comptype> <val>
//	size <node> <comptype> <val>
//	port <name> in|out|inout <bits>
//	chan <src> <dst> freq <f> min <f> max <f> bits <n> tag <t>
//	proc <name> <comptype> std|custom sizecon <f> pincon <n>
//	mem <name> <comptype> sizecon <f>
//	bus <name> width <n> ts <f> td <f>
//	map <node> <comp>
//	chanmap <src> <dst> <bus>

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Write serializes the graph to w. If pt is non-nil its mappings are
// included as map/chanmap records.
func Write(w io.Writer, g *Graph, pt *Partition) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "slif %s\n", g.Name)

	for _, p := range g.Ports {
		fmt.Fprintf(bw, "port %s %s %d\n", p.Name, p.Dir, p.Bits)
	}
	for _, n := range g.Nodes {
		kind := "variable"
		if n.IsBehavior() {
			kind = "behavior"
			if n.IsProcess {
				kind = "process"
			}
		}
		fmt.Fprintf(bw, "node %s %s", n.Name, kind)
		if n.StorageBits != 0 {
			fmt.Fprintf(bw, " storage %d", n.StorageBits)
		}
		fmt.Fprintln(bw)
		for _, t := range sortedKeys(n.ICT) {
			fmt.Fprintf(bw, "ict %s %s %s\n", n.Name, t, fmtF(n.ICT[t]))
		}
		for _, t := range sortedKeys(n.Size) {
			fmt.Fprintf(bw, "size %s %s %s\n", n.Name, t, fmtF(n.Size[t]))
		}
	}
	for _, c := range g.Channels {
		fmt.Fprintf(bw, "chan %s %s freq %s min %s max %s bits %d tag %d\n",
			c.Src.Name, c.Dst.EndpointName(), fmtF(c.AccFreq), fmtF(c.AccMin), fmtF(c.AccMax), c.Bits, c.Tag)
	}
	for _, p := range g.Procs {
		kind := "std"
		if p.Custom {
			kind = "custom"
		}
		fmt.Fprintf(bw, "proc %s %s %s sizecon %s pincon %d\n", p.Name, p.TypeName, kind, fmtF(p.SizeCon), p.PinCon)
	}
	for _, m := range g.Mems {
		fmt.Fprintf(bw, "mem %s %s sizecon %s\n", m.Name, m.TypeName, fmtF(m.SizeCon))
	}
	for _, b := range g.Buses {
		fmt.Fprintf(bw, "bus %s width %d ts %s td %s\n", b.Name, b.BitWidth, fmtF(b.TS), fmtF(b.TD))
	}
	if pt != nil {
		for _, n := range g.Nodes {
			if c := pt.BvComp(n); c != nil {
				fmt.Fprintf(bw, "map %s %s\n", n.Name, c.CompName())
			}
		}
		for _, c := range g.Channels {
			if b := pt.ChanBus(c); b != nil {
				fmt.Fprintf(bw, "chanmap %s %s %s\n", c.Src.Name, c.Dst.EndpointName(), b.Name)
			}
		}
	}
	return bw.Flush()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readMaxRecords caps the number of records one Read accepts, so a
// corrupt or hostile stream cannot grow the graph without bound. A var,
// not a const, so tests can lower it; the default admits far larger
// graphs than any real specification produces.
var readMaxRecords = 4 << 20

// readState accumulates parse state for Read.
type readState struct {
	g       *Graph
	pt      *Partition
	line    int
	records int
}

func (rs *readState) errf(format string, args ...any) error {
	return fmt.Errorf("slif: line %d: %s", rs.line, fmt.Sprintf(format, args...))
}

// Read parses a .slif stream written by Write. The returned partition is
// non-nil only if the stream contained map/chanmap records.
func Read(r io.Reader) (*Graph, *Partition, error) {
	rs := &readState{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		rs.line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if rs.records++; rs.records > readMaxRecords {
			return nil, nil, rs.errf("stream exceeds %d records", readMaxRecords)
		}
		if err := rs.record(f); err != nil {
			return nil, nil, err
		}
	}
	if err := sc.Err(); err != nil {
		// Scanner failures (e.g. a line past the buffer cap) happen after
		// the last complete line.
		return nil, nil, fmt.Errorf("slif: line %d: %v", rs.line+1, err)
	}
	if rs.g == nil {
		return nil, nil, fmt.Errorf("slif: stream has no 'slif' header")
	}
	return rs.g, rs.pt, nil
}

func (rs *readState) record(f []string) error {
	if rs.g == nil && f[0] != "slif" {
		return rs.errf("expected 'slif <name>' header, got %q", f[0])
	}
	switch f[0] {
	case "slif":
		if len(f) != 2 {
			return rs.errf("malformed slif header")
		}
		if rs.g != nil {
			return rs.errf("duplicate slif header (stream already holds graph %q)", rs.g.Name)
		}
		rs.g = NewGraph(f[1])
	case "port":
		if len(f) != 4 {
			return rs.errf("malformed port record")
		}
		dir, err := parseDir(f[2])
		if err != nil {
			return rs.errf("%v", err)
		}
		bits, err := strconv.Atoi(f[3])
		if err != nil {
			return rs.errf("bad port bits %q", f[3])
		}
		if err := rs.g.AddPort(&Port{Name: f[1], Dir: dir, Bits: bits}); err != nil {
			return rs.errf("%v", err)
		}
	case "node":
		if len(f) < 3 {
			return rs.errf("malformed node record")
		}
		n := &Node{Name: f[1]}
		switch f[2] {
		case "behavior":
			n.Kind = BehaviorNode
		case "process":
			n.Kind = BehaviorNode
			n.IsProcess = true
		case "variable":
			n.Kind = VariableNode
		default:
			return rs.errf("bad node kind %q", f[2])
		}
		if len(f) >= 5 && f[3] == "storage" {
			v, err := strconv.ParseInt(f[4], 10, 64)
			if err != nil {
				return rs.errf("bad storage %q", f[4])
			}
			n.StorageBits = v
		}
		if err := rs.g.AddNode(n); err != nil {
			return rs.errf("%v", err)
		}
	case "ict", "size":
		if len(f) != 4 {
			return rs.errf("malformed %s record", f[0])
		}
		n := rs.g.NodeByName(f[1])
		if n == nil {
			return rs.errf("%s for unknown node %q", f[0], f[1])
		}
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return rs.errf("bad %s value %q", f[0], f[3])
		}
		if f[0] == "ict" {
			n.SetICT(f[2], v)
		} else {
			n.SetSize(f[2], v)
		}
	case "chan":
		// chan src dst freq F min F max F bits N tag T
		if len(f) != 13 {
			return rs.errf("malformed chan record")
		}
		src := rs.g.NodeByName(f[1])
		if src == nil {
			return rs.errf("chan with unknown source %q", f[1])
		}
		var dst Endpoint
		if n := rs.g.NodeByName(f[2]); n != nil {
			dst = n
		} else if p := rs.g.PortByName(f[2]); p != nil {
			dst = p
		} else {
			return rs.errf("chan with unknown destination %q", f[2])
		}
		freq, err1 := strconv.ParseFloat(f[4], 64)
		mn, err2 := strconv.ParseFloat(f[6], 64)
		mx, err3 := strconv.ParseFloat(f[8], 64)
		bits, err4 := strconv.Atoi(f[10])
		tag, err5 := strconv.Atoi(f[12])
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return rs.errf("bad chan numbers: %v", err)
			}
		}
		c := &Channel{Src: src, Dst: dst, AccFreq: freq, AccMin: mn, AccMax: mx, Bits: bits, Tag: tag}
		if err := rs.g.AddChannel(c); err != nil {
			return rs.errf("%v", err)
		}
	case "proc":
		// proc name type std|custom sizecon F pincon N
		if len(f) != 8 {
			return rs.errf("malformed proc record")
		}
		sc, err1 := strconv.ParseFloat(f[5], 64)
		pc, err2 := strconv.Atoi(f[7])
		if err1 != nil || err2 != nil {
			return rs.errf("bad proc constraints")
		}
		rs.g.AddProcessor(&Processor{Name: f[1], TypeName: f[2], Custom: f[3] == "custom", SizeCon: sc, PinCon: pc})
	case "mem":
		if len(f) != 5 {
			return rs.errf("malformed mem record")
		}
		sc, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return rs.errf("bad mem sizecon %q", f[4])
		}
		rs.g.AddMemory(&Memory{Name: f[1], TypeName: f[2], SizeCon: sc})
	case "bus":
		// bus name width N ts F td F
		if len(f) != 8 {
			return rs.errf("malformed bus record")
		}
		w, err1 := strconv.Atoi(f[3])
		ts, err2 := strconv.ParseFloat(f[5], 64)
		td, err3 := strconv.ParseFloat(f[7], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return rs.errf("bad bus numbers")
		}
		if w <= 0 {
			// A zero width would divide transfer counts by zero deep in the
			// estimator; reject it here with a position instead.
			return rs.errf("bus %q has non-positive width %d", f[1], w)
		}
		rs.g.AddBus(&Bus{Name: f[1], BitWidth: w, TS: ts, TD: td})
	case "map":
		if len(f) != 3 {
			return rs.errf("malformed map record")
		}
		if rs.pt == nil {
			rs.pt = NewPartition(rs.g)
		}
		n := rs.g.NodeByName(f[1])
		if n == nil {
			return rs.errf("map for unknown node %q", f[1])
		}
		var c Component
		if p := rs.g.ProcByName(f[2]); p != nil {
			c = p
		} else if m := rs.g.MemByName(f[2]); m != nil {
			c = m
		} else {
			return rs.errf("map to unknown component %q", f[2])
		}
		if err := rs.pt.Assign(n, c); err != nil {
			return rs.errf("%v", err)
		}
	case "chanmap":
		if len(f) != 4 {
			return rs.errf("malformed chanmap record")
		}
		if rs.pt == nil {
			rs.pt = NewPartition(rs.g)
		}
		ch := rs.g.FindChannel(f[1], f[2])
		if ch == nil {
			return rs.errf("chanmap for unknown channel %s->%s", f[1], f[2])
		}
		b := rs.g.BusByName(f[3])
		if b == nil {
			return rs.errf("chanmap to unknown bus %q", f[3])
		}
		rs.pt.AssignChan(ch, b)
	default:
		return rs.errf("unknown record %q", f[0])
	}
	return nil
}

func parseDir(s string) (PortDir, error) {
	switch s {
	case "in":
		return In, nil
	case "out":
		return Out, nil
	case "inout":
		return InOut, nil
	}
	return In, fmt.Errorf("bad port direction %q", s)
}

// WriteDOT emits the access graph in Graphviz DOT form. Process nodes are
// drawn bold (as in the paper's Figure 2), variables as boxes, ports as
// diamonds; edges are labeled freq/bits.
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, n := range g.Nodes {
		switch {
		case n.IsProcess:
			fmt.Fprintf(bw, "  %q [shape=ellipse, style=bold];\n", n.Name)
		case n.IsBehavior():
			fmt.Fprintf(bw, "  %q [shape=ellipse];\n", n.Name)
		default:
			fmt.Fprintf(bw, "  %q [shape=box];\n", n.Name)
		}
	}
	for _, p := range g.Ports {
		fmt.Fprintf(bw, "  %q [shape=diamond];\n", p.Name)
	}
	for _, c := range g.Channels {
		fmt.Fprintf(bw, "  %q -> %q [label=\"%s/%d\"];\n",
			c.Src.Name, c.Dst.EndpointName(), fmtF(c.AccFreq), c.Bits)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteDOTPartition renders the access graph with nodes clustered by the
// component the partition maps them to — the picture a designer wants
// after a partitioning step. Ports appear outside every cluster.
func WriteDOTPartition(w io.Writer, g *Graph, pt *Partition) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  compound=true;\n", g.Name)
	for ci, comp := range g.Components() {
		fmt.Fprintf(bw, "  subgraph cluster_%d {\n    label=%q;\n", ci, comp.CompName())
		for _, n := range pt.NodesOn(comp) {
			shape := "box"
			style := ""
			if n.IsBehavior() {
				shape = "ellipse"
			}
			if n.IsProcess {
				style = ", style=bold"
			}
			fmt.Fprintf(bw, "    %q [shape=%s%s];\n", n.Name, shape, style)
		}
		fmt.Fprintln(bw, "  }")
	}
	// Unmapped nodes (partial partitions) go outside any cluster.
	for _, n := range g.Nodes {
		if pt.BvComp(n) == nil {
			fmt.Fprintf(bw, "  %q [shape=box, style=dashed];\n", n.Name)
		}
	}
	for _, p := range g.Ports {
		fmt.Fprintf(bw, "  %q [shape=diamond];\n", p.Name)
	}
	for _, c := range g.Channels {
		attr := ""
		if src, dst := pt.BvComp(c.Src), pt.DstComp(c); dst == nil || src != dst {
			attr = " [color=red]" // crossing edges cost bus transfers and pins
		}
		fmt.Fprintf(bw, "  %q -> %q%s;\n", c.Src.Name, c.Dst.EndpointName(), attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
