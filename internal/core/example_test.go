package core_test

import (
	"fmt"
	"os"

	"specsyn/internal/core"
)

// ExampleGraph builds the smallest meaningful SLIF by hand — one process
// reading a sensor and logging into a buffer — maps it onto a processor,
// and prints the serialized form.
func Example() {
	g := core.NewGraph("logger")

	main := &core.Node{Name: "main", Kind: core.BehaviorNode, IsProcess: true}
	main.SetICT("cpu9", 25)
	main.SetSize("cpu9", 120)
	buf := &core.Node{Name: "buf", Kind: core.VariableNode, StorageBits: 2048}
	buf.SetICT("cpu9", 0.2)
	buf.SetSize("cpu9", 256)
	if err := g.AddNode(main); err != nil {
		panic(err)
	}
	if err := g.AddNode(buf); err != nil {
		panic(err)
	}
	sensor := &core.Port{Name: "sensor", Dir: core.In, Bits: 12}
	if err := g.AddPort(sensor); err != nil {
		panic(err)
	}
	for _, c := range []*core.Channel{
		{Src: main, Dst: sensor, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 12, Tag: core.NoTag},
		{Src: main, Dst: buf, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 19, Tag: core.NoTag},
	} {
		if err := g.AddChannel(c); err != nil {
			panic(err)
		}
	}
	cpu := &core.Processor{Name: "cpu", TypeName: "cpu9"}
	g.AddProcessor(cpu)
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})

	pt := core.AllToProcessor(g, cpu, g.Buses[0])
	if err := pt.Validate(); err != nil {
		panic(err)
	}
	if err := core.Write(os.Stdout, g, pt); err != nil {
		panic(err)
	}
	fmt.Println("channels:", g.Stats().Channels)
	// Output:
	// slif logger
	// port sensor in 12
	// node main process
	// ict main cpu9 25
	// size main cpu9 120
	// node buf variable storage 2048
	// ict buf cpu9 0.2
	// size buf cpu9 256
	// chan main sensor freq 1 min 1 max 1 bits 12 tag -1
	// chan main buf freq 1 min 1 max 1 bits 19 tag -1
	// proc cpu cpu9 std sizecon 0 pincon 0
	// bus bus width 16 ts 0.05 td 0.4
	// map main cpu
	// map buf cpu
	// chanmap main sensor bus
	// chanmap main buf bus
	// channels: 2
}
