package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the .slif reader with arbitrary text. Invariants: no
// panic; on success the graph revalidates... (Validate may legitimately
// reject semantic issues the line parser cannot see, so only panics and
// write-read disagreement are failures).
func FuzzRead(f *testing.F) {
	var golden bytes.Buffer
	g := NewGraph("seed")
	n := &Node{Name: "b", Kind: BehaviorNode, IsProcess: true}
	_ = g.AddNode(n)
	_ = g.AddPort(&Port{Name: "p", Dir: In, Bits: 8})
	_ = g.AddChannel(&Channel{Src: n, Dst: g.PortByName("p"), AccFreq: 1, Bits: 8, Tag: NoTag})
	g.AddProcessor(&Processor{Name: "cpu", TypeName: "t"})
	g.AddBus(&Bus{Name: "bus", BitWidth: 16, TS: 1, TD: 2})
	_ = Write(&golden, g, nil)

	f.Add(golden.String())
	f.Add("")
	f.Add("slif x\n")
	f.Add("slif x\nnode a process\nchan a a freq 1 min 0 max 2 bits 8 tag -1\n")
	f.Add("slif x\nbogus record\n")
	f.Add("# comment\nslif x\nnode \x00 variable\n")
	f.Add("slif x\nslif y\n")                        // duplicate header
	f.Add("slif x\nnode a variable\nnode a process") // duplicate node
	f.Add("slif x\nmap a cpu\nchanmap a b bus\n")    // mappings without objects
	f.Add("slif x\nbus b width 16 ts 1 td 2\nproc p t std sizecon 1 pincon 2\nmem m t sizecon 0\n")
	f.Add("slif x\nnode a variable storage 99999999999999999999\n") // overflowing int
	f.Add("slif x\nbus b width 0 ts 1 td 2\n")                      // zero-width bus (estimator div-by-zero)
	f.Fuzz(func(t *testing.T, src string) {
		g, pt, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		// Whatever parsed must serialize and reparse identically.
		var buf bytes.Buffer
		if err := Write(&buf, g, pt); err != nil {
			t.Fatalf("reserialize failed: %v", err)
		}
		if _, _, err := Read(&buf); err != nil {
			t.Fatalf("round trip of accepted input failed: %v\ninput: %q", err, src)
		}
	})
}
