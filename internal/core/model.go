// Package core implements SLIF, the specification-level intermediate format
// of Vahid's SpecSyn (TR CS-94-06 / DATE 1995).
//
// A SLIF design is the annotated sextuple ⟨BV_all, IO_all, C_all, P_all,
// M_all, I_all⟩ of §2.2/§2.5 of the paper: behavior and variable nodes, I/O
// ports, access channels, processors (standard or custom/ASIC), memories,
// and buses. Nodes carry preprocessed per-component-type internal
// computation time (ict) and size weights; channels carry access frequency,
// transferred bits and concurrency tags; buses carry bit-width and
// same/different-component transfer times. A Partition maps every
// functional object to exactly one system component, and package estimate
// computes the §3 design metrics from a (Graph, Partition) pair by lookups
// and sums only.
package core

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes behavior nodes from variable nodes.
type NodeKind int

// Node kinds.
const (
	BehaviorNode NodeKind = iota
	VariableNode
)

func (k NodeKind) String() string {
	if k == BehaviorNode {
		return "behavior"
	}
	return "variable"
}

// NoTag marks a channel access that is strictly sequential with respect to
// every other access of the same source behavior.
const NoTag = -1

// Node is one element of BV_all: a behavior (process or procedure) or a
// variable. The ICT and Size maps are the ict_list/size_list annotations of
// §2.5, keyed by component *type* name. For a variable node, ICT holds the
// storage read/write time on each candidate component type.
type Node struct {
	Name      string
	Kind      NodeKind
	IsProcess bool // §2.3: marked process nodes repeat forever

	ICT  map[string]float64 // component type → internal computation time (µs)
	Size map[string]float64 // component type → size (bytes, gates or words)

	// StorageBits is the footprint of a variable (array length × element
	// width); informational for memory sizing models.
	StorageBits int64
}

// IsBehavior reports whether the node is a behavior node.
func (n *Node) IsBehavior() bool { return n.Kind == BehaviorNode }

// SetICT records the internal computation time of the node on the given
// component type.
func (n *Node) SetICT(compType string, val float64) {
	if n.ICT == nil {
		n.ICT = make(map[string]float64)
	}
	n.ICT[compType] = val
}

// SetSize records the size weight of the node on the given component type.
func (n *Node) SetSize(compType string, val float64) {
	if n.Size == nil {
		n.Size = make(map[string]float64)
	}
	n.Size[compType] = val
}

// PortDir is the direction of an I/O port.
type PortDir int

// Port directions.
const (
	In PortDir = iota
	Out
	InOut
)

func (d PortDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return "inout"
	}
}

// Port is one element of IO_all: an external port of the system.
type Port struct {
	Name string
	Dir  PortDir
	Bits int // encoding width of the port's data
}

// Endpoint is a channel destination: a Node or a Port.
type Endpoint interface {
	EndpointName() string
}

// EndpointName implements Endpoint.
func (n *Node) EndpointName() string { return n.Name }

// EndpointName implements Endpoint.
func (p *Port) EndpointName() string { return p.Name }

// Channel is one element of C_all: an access by the source behavior to a
// behavior, variable or port (§2.2). Direction is initiator → accessed
// object, not data flow; a cycle therefore represents recursion.
type Channel struct {
	Src *Node    // always a behavior node
	Dst Endpoint // node or port

	AccFreq float64 // average accesses per start-to-finish execution of Src
	AccMin  float64 // minimum accesses (§2.4.1)
	AccMax  float64 // maximum accesses
	Bits    int     // bits transferred per access (§2.4.1)
	Tag     int     // concurrency tag (§2.3); NoTag = strictly sequential
}

// Key returns the (src, dst) identity of the channel. SLIF merges all
// accesses between the same pair into one edge, so Key is unique per graph.
func (c *Channel) Key() string { return c.Src.Name + "->" + c.Dst.EndpointName() }

// Processor is one element of P_all: a standard processor or a custom
// (ASIC) processor to which behaviors and variables may be mapped.
type Processor struct {
	Name     string
	TypeName string  // key into node ICT/Size maps
	Custom   bool    // true for ASIC/custom hardware
	SizeCon  float64 // size constraint (§2.4.3); 0 = unconstrained
	PinCon   int     // I/O pin constraint (§2.4.2); 0 = unconstrained
}

// Memory is one element of M_all: a memory to which variables may be mapped.
type Memory struct {
	Name     string
	TypeName string
	SizeCon  float64 // size constraint in words; 0 = unconstrained
}

// Bus is one element of I_all. BitWidth is physical wires; TS/TD are the
// same-component and different-component transfer times of §2.4.1.
type Bus struct {
	Name     string
	BitWidth int
	TS       float64 // µs per transfer within one component
	TD       float64 // µs per transfer between components
}

// Component is a processor or memory (the targets of the BV mapping).
type Component interface {
	CompName() string
	// TypeKey returns the component type name used to look up node weights.
	TypeKey() string
}

// CompName implements Component.
func (p *Processor) CompName() string { return p.Name }

// TypeKey implements Component.
func (p *Processor) TypeKey() string { return p.TypeName }

// CompName implements Component.
func (m *Memory) CompName() string { return m.Name }

// TypeKey implements Component.
func (m *Memory) TypeKey() string { return m.TypeName }

// Graph is a complete SLIF design.
type Graph struct {
	Name string

	Nodes    []*Node    // BV_all
	Ports    []*Port    // IO_all
	Channels []*Channel // C_all
	Procs    []*Processor
	Mems     []*Memory
	Buses    []*Bus

	nodeByName map[string]*Node
	portByName map[string]*Port
	chanByKey  map[string]*Channel
	outgoing   map[*Node][]*Channel // GetBehChans index
	incoming   map[string][]*Channel
}

// NewGraph returns an empty SLIF graph.
func NewGraph(name string) *Graph {
	return &Graph{
		Name:       name,
		nodeByName: make(map[string]*Node),
		portByName: make(map[string]*Port),
		chanByKey:  make(map[string]*Channel),
		outgoing:   make(map[*Node][]*Channel),
		incoming:   make(map[string][]*Channel),
	}
}

// AddNode adds a behavior or variable node. Names must be unique across
// nodes and ports.
func (g *Graph) AddNode(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("slif: node with empty name")
	}
	if g.nodeByName[n.Name] != nil || g.portByName[n.Name] != nil {
		return fmt.Errorf("slif: duplicate node name %q", n.Name)
	}
	g.Nodes = append(g.Nodes, n)
	g.nodeByName[n.Name] = n
	return nil
}

// AddPort adds an external port.
func (g *Graph) AddPort(p *Port) error {
	if p.Name == "" {
		return fmt.Errorf("slif: port with empty name")
	}
	if g.nodeByName[p.Name] != nil || g.portByName[p.Name] != nil {
		return fmt.Errorf("slif: duplicate port name %q", p.Name)
	}
	g.Ports = append(g.Ports, p)
	g.portByName[p.Name] = p
	return nil
}

// AddChannel adds an access channel. The source must be a behavior node
// already in the graph, the destination a node or port in the graph, and
// the (src, dst) pair must be new — SLIF merges repeated accesses into one
// edge before this point.
func (g *Graph) AddChannel(c *Channel) error {
	if c.Src == nil || !c.Src.IsBehavior() {
		return fmt.Errorf("slif: channel source must be a behavior node")
	}
	if g.nodeByName[c.Src.Name] != c.Src {
		return fmt.Errorf("slif: channel source %q not in graph", c.Src.Name)
	}
	switch d := c.Dst.(type) {
	case *Node:
		if g.nodeByName[d.Name] != d {
			return fmt.Errorf("slif: channel destination %q not in graph", d.Name)
		}
	case *Port:
		if g.portByName[d.Name] != d {
			return fmt.Errorf("slif: channel destination port %q not in graph", d.Name)
		}
	default:
		return fmt.Errorf("slif: channel has no destination")
	}
	key := c.Key()
	if g.chanByKey[key] != nil {
		return fmt.Errorf("slif: duplicate channel %s", key)
	}
	g.Channels = append(g.Channels, c)
	g.chanByKey[key] = c
	g.outgoing[c.Src] = append(g.outgoing[c.Src], c)
	g.incoming[c.Dst.EndpointName()] = append(g.incoming[c.Dst.EndpointName()], c)
	return nil
}

// AddProcessor adds a processor component.
func (g *Graph) AddProcessor(p *Processor) { g.Procs = append(g.Procs, p) }

// AddMemory adds a memory component.
func (g *Graph) AddMemory(m *Memory) { g.Mems = append(g.Mems, m) }

// AddBus adds a bus component.
func (g *Graph) AddBus(b *Bus) { g.Buses = append(g.Buses, b) }

// NodeByName returns the node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node { return g.nodeByName[name] }

// PortByName returns the port with the given name, or nil.
func (g *Graph) PortByName(name string) *Port { return g.portByName[name] }

// FindChannel returns the channel from src to dst, or nil.
func (g *Graph) FindChannel(src, dst string) *Channel {
	return g.chanByKey[src+"->"+dst]
}

// BehChans implements GetBehChans(b) of §3.1: all channels whose source is b.
func (g *Graph) BehChans(b *Node) []*Channel { return g.outgoing[b] }

// InChans returns all channels whose destination is the named node or port.
func (g *Graph) InChans(name string) []*Channel { return g.incoming[name] }

// ProcByName returns the processor with the given name, or nil.
func (g *Graph) ProcByName(name string) *Processor {
	for _, p := range g.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// MemByName returns the memory with the given name, or nil.
func (g *Graph) MemByName(name string) *Memory {
	for _, m := range g.Mems {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// BusByName returns the bus with the given name, or nil.
func (g *Graph) BusByName(name string) *Bus {
	for _, b := range g.Buses {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Behaviors returns the behavior nodes in insertion order.
func (g *Graph) Behaviors() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsBehavior() {
			out = append(out, n)
		}
	}
	return out
}

// Variables returns the variable nodes in insertion order.
func (g *Graph) Variables() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if !n.IsBehavior() {
			out = append(out, n)
		}
	}
	return out
}

// Processes returns the behavior nodes marked as processes (§2.3).
func (g *Graph) Processes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsProcess {
			out = append(out, n)
		}
	}
	return out
}

// Stats summarizes the size of a SLIF graph; this is what the paper's
// Figure 4 reports per example.
type Stats struct {
	BV       int // behavior + variable nodes
	IO       int
	Channels int
	Procs    int
	Mems     int
	Buses    int
}

// Stats returns the graph's size summary.
func (g *Graph) Stats() Stats {
	return Stats{
		BV: len(g.Nodes), IO: len(g.Ports), Channels: len(g.Channels),
		Procs: len(g.Procs), Mems: len(g.Mems), Buses: len(g.Buses),
	}
}

// Components returns all processors and memories as the Component interface,
// processors first, in insertion order.
func (g *Graph) Components() []Component {
	out := make([]Component, 0, len(g.Procs)+len(g.Mems))
	for _, p := range g.Procs {
		out = append(out, p)
	}
	for _, m := range g.Mems {
		out = append(out, m)
	}
	return out
}

// Validate checks structural invariants of the graph itself (not of a
// partition): channel endpoints are present, sources are behaviors,
// annotations are non-negative, and channel keys are unique.
func (g *Graph) Validate() error {
	// Dedupe on the (src, dst) name pair rather than Key(): building the
	// "src->dst" string for every channel dominates validation on large
	// graphs, and this check sits on the incremental-rebuild hot path.
	seen := make(map[[2]string]bool, len(g.Channels))
	for _, c := range g.Channels {
		if !c.Src.IsBehavior() {
			return fmt.Errorf("slif: channel %s has variable source", c.Key())
		}
		k := [2]string{c.Src.Name, c.Dst.EndpointName()}
		if seen[k] {
			return fmt.Errorf("slif: duplicate channel %s", c.Key())
		}
		seen[k] = true
		if c.AccFreq < 0 || c.Bits < 0 {
			return fmt.Errorf("slif: channel %s has negative annotation", c.Key())
		}
		if c.AccMax != 0 && c.AccMax < c.AccMin {
			return fmt.Errorf("slif: channel %s has accmax < accmin", c.Key())
		}
	}
	for _, n := range g.Nodes {
		for t, v := range n.ICT {
			if v < 0 {
				return fmt.Errorf("slif: node %s has negative ict on %s", n.Name, t)
			}
		}
		for t, v := range n.Size {
			if v < 0 {
				return fmt.Errorf("slif: node %s has negative size on %s", n.Name, t)
			}
		}
	}
	for _, b := range g.Buses {
		if b.BitWidth <= 0 {
			return fmt.Errorf("slif: bus %s has non-positive bitwidth", b.Name)
		}
		if b.TS < 0 || b.TD < 0 {
			return fmt.Errorf("slif: bus %s has negative transfer time", b.Name)
		}
	}
	return nil
}

// Reindex rebuilds every internal lookup map (name → node/port, channel
// key, per-node adjacency) from the graph's slices. The Add/Remove helpers
// maintain the indexes incrementally; code that edits the slices directly
// — bulk builders, deserializers, surgery the helpers don't cover — must
// call Reindex before the next lookup, or lookups may serve stale
// pointers. Reindex is idempotent and O(|graph|); Compile does not need it
// (a Snapshot is built from the slices alone).
func (g *Graph) Reindex() {
	g.nodeByName = make(map[string]*Node, len(g.Nodes))
	g.portByName = make(map[string]*Port, len(g.Ports))
	g.chanByKey = make(map[string]*Channel, len(g.Channels))
	g.outgoing = make(map[*Node][]*Channel, len(g.Nodes))
	g.incoming = make(map[string][]*Channel, len(g.Nodes))
	for _, n := range g.Nodes {
		g.nodeByName[n.Name] = n
	}
	for _, p := range g.Ports {
		g.portByName[p.Name] = p
	}
	for _, c := range g.Channels {
		g.chanByKey[c.Key()] = c
		g.outgoing[c.Src] = append(g.outgoing[c.Src], c)
		g.incoming[c.Dst.EndpointName()] = append(g.incoming[c.Dst.EndpointName()], c)
	}
}

// Clone returns a deep copy of the graph. When withComponents is false the
// copy has empty P/M/I sets — the form allocation explorers start from.
// The copy's slices are built directly and indexed by one Reindex pass, so
// its lookups can never serve pointers into the original graph.
func (g *Graph) Clone(withComponents bool) *Graph {
	ng := NewGraph(g.Name)
	nodeOf := make(map[*Node]*Node, len(g.Nodes))
	portOf := make(map[*Port]*Port, len(g.Ports))
	for _, p := range g.Ports {
		np := *p
		ng.Ports = append(ng.Ports, &np)
		portOf[p] = &np
	}
	for _, n := range g.Nodes {
		nn := &Node{Name: n.Name, Kind: n.Kind, IsProcess: n.IsProcess, StorageBits: n.StorageBits}
		for k, v := range n.ICT {
			nn.SetICT(k, v)
		}
		for k, v := range n.Size {
			nn.SetSize(k, v)
		}
		ng.Nodes = append(ng.Nodes, nn)
		nodeOf[n] = nn
	}
	for _, c := range g.Channels {
		var dst Endpoint
		switch d := c.Dst.(type) {
		case *Node:
			dst = nodeOf[d]
		case *Port:
			dst = portOf[d]
		}
		ng.Channels = append(ng.Channels, &Channel{
			Src: nodeOf[c.Src], Dst: dst,
			AccFreq: c.AccFreq, AccMin: c.AccMin, AccMax: c.AccMax,
			Bits: c.Bits, Tag: c.Tag,
		})
	}
	ng.Reindex()
	if withComponents {
		for _, p := range g.Procs {
			cp := *p
			ng.AddProcessor(&cp)
		}
		for _, m := range g.Mems {
			cm := *m
			ng.AddMemory(&cm)
		}
		for _, b := range g.Buses {
			cb := *b
			ng.AddBus(&cb)
		}
	}
	return ng
}

// RemoveNode deletes a node and every channel touching it. It is the
// low-level mutation used by the transformation engine; the caller must
// keep any Partition over the graph consistent itself.
func (g *Graph) RemoveNode(n *Node) {
	if g.nodeByName[n.Name] != n {
		return
	}
	delete(g.nodeByName, n.Name)
	g.Nodes = deleteElem(g.Nodes, n)
	// Channels from n.
	for _, c := range g.outgoing[n] {
		delete(g.chanByKey, c.Key())
		g.Channels = deleteElem(g.Channels, c)
		g.incoming[c.Dst.EndpointName()] = deleteElem(g.incoming[c.Dst.EndpointName()], c)
	}
	delete(g.outgoing, n)
	// Channels to n.
	for _, c := range g.incoming[n.Name] {
		delete(g.chanByKey, c.Key())
		g.Channels = deleteElem(g.Channels, c)
		g.outgoing[c.Src] = deleteElem(g.outgoing[c.Src], c)
	}
	delete(g.incoming, n.Name)
}

// RemoveChannel deletes a single channel.
func (g *Graph) RemoveChannel(c *Channel) {
	if g.chanByKey[c.Key()] != c {
		return
	}
	delete(g.chanByKey, c.Key())
	g.Channels = deleteElem(g.Channels, c)
	g.outgoing[c.Src] = deleteElem(g.outgoing[c.Src], c)
	g.incoming[c.Dst.EndpointName()] = deleteElem(g.incoming[c.Dst.EndpointName()], c)
}

// deleteElem removes the first occurrence of v from s, preserving order.
func deleteElem[T comparable](s []T, v T) []T {
	for i, x := range s {
		if x == v {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}

// SortedCompTypes returns the sorted union of component type names that
// appear in any node's annotation maps — useful for reports.
func (g *Graph) SortedCompTypes() []string {
	set := map[string]bool{}
	for _, n := range g.Nodes {
		for t := range n.ICT {
			set[t] = true
		}
		for t := range n.Size {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
