package main

import "testing"

func TestDeadlineFlag(t *testing.T) {
	var d deadlineFlag
	if err := d.Set("Ctrl=3500000"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("volmain=50.5"); err != nil {
		t.Fatal(err)
	}
	if d.m["ctrl"] != 3.5e6 {
		t.Errorf("ctrl deadline = %v (names must lower-case)", d.m["ctrl"])
	}
	if d.m["volmain"] != 50.5 {
		t.Errorf("volmain deadline = %v", d.m["volmain"])
	}
	if err := d.Set("missing-equals"); err == nil {
		t.Error("malformed deadline accepted")
	}
	if err := d.Set("x=notanumber"); err == nil {
		t.Error("non-numeric deadline accepted")
	}
	if d.String() == "" {
		t.Error("String() empty")
	}
}
