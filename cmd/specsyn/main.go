// Command specsyn is the system-design environment CLI: it reads a
// behavioral VHDL specification, builds the annotated SLIF access graph,
// and supports the paper's four system-design tasks — allocation (via a
// component library file), partitioning, transformation and estimation.
//
// Usage:
//
//	specsyn build     -vhd f.vhd [-prob f.prob] [-lib f.lib] [-ov f.ov] [-o out.slif] [-dot out.dot]
//	specsyn estimate  -vhd f.vhd [...] [-split]         estimate a partition
//	specsyn partition -vhd f.vhd [...] -algo gm [-deadline proc=us] [-seed n] [-iters n] [-timeout d] [-max-evals n] [-adaptive] [-share]
//	specsyn xform     -vhd f.vhd [...] -inline-all | -merge a,b
//	specsyn simulate  -vhd f.vhd [-steps n] [-seed n] [-prob-out f.prob]
//	specsyn shell     -vhd f.vhd [...]                  interactive session
//
// Every subcommand accepts the same input flags as build. simulate runs
// the behavioral interpreter under a random port stimulus and can write
// the measured branch-probability profile — the paper's "obtained through
// profiling" path.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/interp"
	"specsyn/internal/partition"
	"specsyn/internal/sem"
	"specsyn/internal/shell"
	"specsyn/internal/specsyn"
	"specsyn/internal/vhdl"
	"specsyn/internal/xform"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "build":
		runBuild(args)
	case "estimate":
		runEstimate(args)
	case "partition":
		runPartition(args)
	case "xform":
		runXform(args)
	case "simulate":
		runSimulate(args)
	case "shell":
		runShell(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: specsyn build|estimate|partition|xform|simulate|shell [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specsyn:", err)
	os.Exit(1)
}

// inputFlags registers the shared input flags on fs and returns a loader.
func inputFlags(fs *flag.FlagSet) func() *specsyn.Env {
	vhd := fs.String("vhd", "", "VHDL specification (required)")
	prob := fs.String("prob", "", "branch probability file")
	lib := fs.String("lib", "", "component library / allocation file (default: built-in std)")
	ov := fs.String("ov", "", "designer weight override file")
	return func() *specsyn.Env {
		if *vhd == "" {
			fmt.Fprintln(os.Stderr, "specsyn: -vhd is required")
			fs.Usage()
			os.Exit(2)
		}
		env := specsyn.New()
		if err := env.LoadVHDLFile(*vhd); err != nil {
			fatal(err)
		}
		if *prob != "" {
			if err := env.LoadProfileFile(*prob); err != nil {
				fatal(err)
			}
		}
		if *lib != "" {
			if err := env.LoadLibraryFile(*lib); err != nil {
				fatal(err)
			}
		}
		if *ov != "" {
			if err := env.LoadOverridesFile(*ov); err != nil {
				fatal(err)
			}
		}
		if err := env.Build(); err != nil {
			fatal(err)
		}
		for _, w := range env.Design.Warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		return env
	}
}

func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	load := inputFlags(fs)
	out := fs.String("o", "", "write the SLIF graph to this .slif file")
	dot := fs.String("dot", "", "write a Graphviz rendering to this file")
	_ = fs.Parse(args)

	env := load()
	st := env.Graph.Stats()
	fmt.Printf("built SLIF for %s in %v\n", env.Graph.Name, env.BuildTime)
	fmt.Printf("  %d BV nodes (%d behaviors, %d variables), %d ports, %d channels\n",
		st.BV, len(env.Graph.Behaviors()), len(env.Graph.Variables()), st.IO, st.Channels)
	fmt.Printf("  allocation: %d processors, %d memories, %d buses\n", st.Procs, st.Mems, st.Buses)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := core.Write(f, env.Graph, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", *out)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := core.WriteDOT(f, env.Graph); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", *dot)
	}
}

func runEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	load := inputFlags(fs)
	split := fs.Bool("split", false, "move heavy arrays and non-process behaviors to the second processor (if any) before estimating")
	mode := fs.String("mode", "avg", "access-count mode: min, avg or max")
	_ = fs.Parse(args)

	env := load()
	pt, err := env.DefaultPartition()
	if err != nil {
		fatal(err)
	}
	if *split && len(env.Graph.Procs) > 1 {
		second := env.Graph.Procs[1]
		for _, n := range env.Graph.Nodes {
			if _, ok := n.ICT[second.TypeName]; !ok {
				continue
			}
			if (n.IsBehavior() && !n.IsProcess) || n.StorageBits > 2048 {
				if err := pt.Assign(n, second); err != nil {
					fatal(err)
				}
			}
		}
	}
	var opts estimate.Options
	switch *mode {
	case "min":
		opts.Mode = estimate.Min
	case "max":
		opts.Mode = estimate.Max
	case "avg":
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	rep, dur, err := env.Estimate(pt, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("T-slif %v   T-est %v   (%s access counts)\n\n", env.BuildTime, dur, *mode)
	fmt.Print(rep.String())
}

func runPartition(args []string) {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	load := inputFlags(fs)
	algo := fs.String("algo", "gm", "algorithm: random, greedy, cluster, gm, anneal, exhaustive, multi, portfolio")
	seed := fs.Int64("seed", 1, "random seed")
	iters := fs.Int("iters", 0, "iteration budget (0 = algorithm default)")
	workers := fs.Int("workers", 0, "parallel workers for multi/random (0 = GOMAXPROCS)")
	legs := fs.Int("legs", 0, "independent search legs for multi/random (0 = workers)")
	timeout := fs.Duration("timeout", 0, "wall-clock bound; on expiry the best partition found so far is kept (0 = none)")
	maxEvals := fs.Int("max-evals", 0, "cost-evaluation budget (0 = unlimited)")
	adaptive := fs.Bool("adaptive", false, "round-based adaptive scheduling for multi (kill and respawn lagging legs)")
	share := fs.Bool("share", false, "share the incumbent across legs (implies -adaptive; anneal restarts reheat from it)")
	roundEvals := fs.Int("round-evals", 0, "evaluations per leg per adaptive round (0 = default)")
	maxRounds := fs.Int("max-rounds", 0, "adaptive round cap (0 = default)")
	killMargin := fs.Float64("kill-margin", 0, "relative lag that kills a leg after a round (0 = default, negative = never)")
	swapProb := fs.Float64("swap-prob", 0, "pair-swap proposal probability for anneal legs (0 = moves only)")
	var deadlines deadlineFlag
	fs.Var(&deadlines, "deadline", "process deadline as name=microseconds (repeatable)")
	_ = fs.Parse(args)

	env := load()
	cons := partition.Constraints{Deadline: deadlines.m}

	// Ctrl-C cancels the in-flight search; the engines return their best
	// partition found so far rather than dying, so the report below still
	// prints. Once the search returns, stop() restores default signal
	// handling, so a second Ctrl-C kills the process as usual.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res partition.Result
	// "multi" and "portfolio" are the parallel engines; -workers/-legs also
	// turn "random" into its sharded parallel form (same result, spread
	// over a worker pool). -adaptive/-share upgrade "multi" to "portfolio".
	if *adaptive || *share {
		if *algo == "multi" || *algo == "" {
			*algo = "portfolio"
		}
	}
	if *algo == "multi" || *algo == "portfolio" || (*algo == "random" && (*workers != 0 || *legs != 0)) {
		opt := partition.ParallelOptions{
			Workers: *workers, Legs: *legs,
			Adaptive: *adaptive, Share: *share,
			RoundEvals: *roundEvals, MaxRounds: *maxRounds, KillMargin: *killMargin,
			SwapProb: *swapProb,
		}
		multi, err := env.PartitionSearchParallel(ctx, *algo, cons, partition.DefaultWeights(), *seed, *iters, *maxEvals, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d legs, best from leg %d\n", *algo, len(multi.Legs), multi.BestLeg)
		if rep := multi.Report; rep.Rounds > 0 {
			fmt.Printf("adaptive: %d rounds, %d legs killed, %d respawned\n",
				rep.Rounds, rep.LegsKilled, rep.LegsRespawned)
		}
		if multi.Report.Partial || len(multi.Report.Panics) > 0 || len(multi.Report.Errors) > 0 {
			fmt.Printf("note: %s\n", multi.Report.String())
		}
		res = multi.Result
	} else {
		var err error
		res, err = env.PartitionSearch(ctx, *algo, cons, partition.DefaultWeights(), *seed, *iters, *maxEvals)
		if err != nil {
			fatal(err)
		}
	}
	stop()
	if res.Partial {
		fmt.Println("search interrupted — reporting best partition found so far")
	}
	fmt.Printf("%s: %s\n\n", *algo, res)
	fmt.Print(res.Best.String())
	rep, _, err := env.Estimate(res.Best, estimate.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.String())
}

func runXform(args []string) {
	fs := flag.NewFlagSet("xform", flag.ExitOnError)
	load := inputFlags(fs)
	inlineAll := fs.Bool("inline-all", false, "inline every single-caller procedure")
	merge := fs.String("merge", "", "merge two processes: a,b")
	_ = fs.Parse(args)

	env := load()
	g := env.Graph
	before := g.Stats()
	fmt.Printf("before: %d nodes, %d channels, traffic %.1f bits/iteration\n",
		before.BV, before.Channels, xform.Traffic(g))

	if *inlineAll {
		inlined, err := xform.InlineAll(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("inlined: %s\n", strings.Join(inlined, ", "))
	}
	if *merge != "" {
		parts := strings.Split(*merge, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-merge wants a,b"))
		}
		a, b := g.NodeByName(strings.TrimSpace(parts[0])), g.NodeByName(strings.TrimSpace(parts[1]))
		if a == nil || b == nil {
			fatal(fmt.Errorf("unknown process in -merge %q", *merge))
		}
		merged, err := xform.MergeProcesses(g, a, b, a.Name+"_"+b.Name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("merged into %s\n", merged.Name)
	}

	after := g.Stats()
	fmt.Printf("after:  %d nodes, %d channels, traffic %.1f bits/iteration\n",
		after.BV, after.Channels, xform.Traffic(g))
}

// deadlineFlag accumulates repeatable name=value pairs.
type deadlineFlag struct{ m map[string]float64 }

func (d *deadlineFlag) String() string { return fmt.Sprint(d.m) }

func (d *deadlineFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=microseconds, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	if d.m == nil {
		d.m = make(map[string]float64)
	}
	d.m[strings.ToLower(name)] = v
	return nil
}

func runSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	vhd := fs.String("vhd", "", "VHDL specification (required)")
	steps := fs.Int("steps", 1000, "simulation steps")
	seed := fs.Int64("seed", 1, "stimulus seed")
	probOut := fs.String("prob-out", "", "write the measured branch-probability profile here")
	_ = fs.Parse(args)
	if *vhd == "" {
		fmt.Fprintln(os.Stderr, "specsyn: -vhd is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*vhd)
	if err != nil {
		fatal(err)
	}
	df, err := vhdl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		fatal(err)
	}
	m, err := interp.New(d)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	// Random stimulus over the input ports' declared ranges.
	type in struct {
		name     string
		lo, span int64
	}
	var ins []in
	for _, p := range d.Ports {
		if p.Dir == vhdl.DirOut {
			continue
		}
		lo, hi := p.Type.Low, p.Type.High
		if p.Type.IsArray() {
			lo, hi = 0, 1
		}
		ins = append(ins, in{name: p.Name, lo: lo, span: hi - lo + 1})
	}
	stim := func(step int, m *interp.Machine) {
		for _, p := range ins {
			if rng.Intn(3) == 0 { // change a third of the inputs per step
				_ = m.SetPort(p.name, p.lo+rng.Int63n(p.span))
			}
		}
	}
	if err := m.Run(*steps, stim); err != nil {
		fatal(err)
	}

	fmt.Printf("simulated %d steps\n", m.StepCount())
	names := make([]string, 0, len(m.Activations))
	acts := map[string]int64{}
	for b, n := range m.Activations {
		names = append(names, b.UniqueID)
		acts[b.UniqueID] = n
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-20s %8d activations\n", n, acts[n])
	}

	if *probOut != "" {
		prof := m.Profile()
		f, err := os.Create(*probOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := prof.Dump(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote measured profile to %s\n", *probOut)
	}
}

func runShell(args []string) {
	fs := flag.NewFlagSet("shell", flag.ExitOnError)
	load := inputFlags(fs)
	_ = fs.Parse(args)
	env := load()
	sess, err := shell.New(env)
	if err != nil {
		fatal(err)
	}
	// Each search command gets a context cancelled by Ctrl-C, so an
	// interrupted search keeps its best-so-far partition and the shell
	// keeps running.
	sess.NewSearchCtx = func() (context.Context, context.CancelFunc) {
		return signal.NotifyContext(context.Background(), os.Interrupt)
	}
	if err := sess.Run(os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}
