// Command slifdump inspects SLIF graphs. It reads a VHDL specification
// (building the graph) or an existing .slif file, and prints statistics,
// the textual SLIF form, or a Graphviz DOT rendering.
//
// Usage:
//
//	slifdump [-prob file] [-lib file] [-ov file] [-stats|-slif|-dot] design.vhd
//	slifdump [-stats|-slif|-dot] design.slif
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specsyn/internal/core"
	"specsyn/internal/specsyn"
)

func main() {
	probFile := flag.String("prob", "", "branch probability file")
	libFile := flag.String("lib", "", "component library file")
	ovFile := flag.String("ov", "", "designer weight override file")
	stats := flag.Bool("stats", false, "print size statistics only")
	slif := flag.Bool("slif", false, "print the textual .slif form")
	dot := flag.Bool("dot", false, "print Graphviz DOT")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slifdump [flags] design.{vhd,slif}")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	var g *core.Graph
	var pt *core.Partition
	if strings.HasSuffix(path, ".slif") {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		gg, ppt, err := core.Read(f)
		if err != nil {
			fatal(err)
		}
		g, pt = gg, ppt
	} else {
		env := specsyn.New()
		if err := env.LoadVHDLFile(path); err != nil {
			fatal(err)
		}
		if *probFile != "" {
			if err := env.LoadProfileFile(*probFile); err != nil {
				fatal(err)
			}
		}
		if *libFile != "" {
			if err := env.LoadLibraryFile(*libFile); err != nil {
				fatal(err)
			}
		}
		if *ovFile != "" {
			if err := env.LoadOverridesFile(*ovFile); err != nil {
				fatal(err)
			}
		}
		if err := env.Build(); err != nil {
			fatal(err)
		}
		g = env.Graph
		for _, w := range env.Design.Warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
	}

	switch {
	case *dot:
		// A .slif with an embedded partition renders clustered by
		// component; otherwise the flat access graph.
		var err error
		if pt != nil {
			err = core.WriteDOTPartition(os.Stdout, g, pt)
		} else {
			err = core.WriteDOT(os.Stdout, g)
		}
		if err != nil {
			fatal(err)
		}
	case *slif:
		if err := core.Write(os.Stdout, g, nil); err != nil {
			fatal(err)
		}
	default:
		_ = stats
		s := g.Stats()
		lines := 0
		if !strings.HasSuffix(path, ".slif") {
			data, err := os.ReadFile(path)
			if err == nil {
				lines = strings.Count(string(data), "\n")
				if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
					lines++
				}
			}
		}
		fmt.Printf("design:    %s\n", g.Name)
		if lines > 0 {
			fmt.Printf("lines:     %d\n", lines)
		}
		fmt.Printf("BV nodes:  %d  (%d behaviors, %d variables)\n",
			s.BV, len(g.Behaviors()), len(g.Variables()))
		fmt.Printf("IO ports:  %d\n", s.IO)
		fmt.Printf("channels:  %d\n", s.Channels)
		fmt.Printf("components: %d procs, %d mems, %d buses\n", s.Procs, s.Mems, s.Buses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slifdump:", err)
	os.Exit(1)
}
