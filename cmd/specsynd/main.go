// Command specsynd is the SpecSyn exploration daemon: it holds built SLIF
// design sessions in memory and serves estimation, partition-search and
// exploration requests over HTTP/JSON — build once, estimate thousands of
// times, for many designs and many clients at once.
//
//	specsynd -addr :8650 -state-dir /var/lib/specsynd
//
//	curl -X POST localhost:8650/v1/designs/fuzzy/build \
//	     -d "{\"vhdl\": $(jq -Rs . < testdata/fuzzy.vhd)}"
//	curl -X POST localhost:8650/v1/designs/fuzzy/estimate -d '{}'
//	curl -X POST localhost:8650/v1/designs/fuzzy/explore \
//	     -d '{"algo":"multi","legs":8,"max_evals":20000}'
//
// With -state-dir, sessions survive crashes: inputs are journaled, the
// compiled SLIF is checkpointed, and on startup the daemon replays the
// store (answering 503 on /readyz until it is done). On SIGTERM it drains:
// stops accepting work, waits out in-flight requests up to -drain-timeout,
// and flushes every dirty session's checkpoint before exiting.
//
// See the README's "specsynd" section for the full endpoint tour and
// DESIGN.md's "Serving" and "Durability & recovery" sections for the
// concurrency and crash-safety contracts.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specsyn/internal/alloc"
	"specsyn/internal/serve"
	"specsyn/internal/store"
)

func main() {
	addr := flag.String("addr", ":8650", "listen address")
	maxSessions := flag.Int("max-sessions", 64, "LRU cap on cached design sessions")
	maxConcurrent := flag.Int("max-concurrent", 0, "heavy requests in flight across all sessions (0 = GOMAXPROCS)")
	sessionSlots := flag.Int("session-slots", 2, "requests running concurrently per session")
	sessionQueue := flag.Int("session-queue", 8, "requests waiting per session before load-shedding with 503")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied deadlines")
	maxEvals := flag.Int("max-evals", 0, "cap on per-request cost-evaluation budgets (0 = unlimited)")
	libPath := flag.String("lib", "", "component library file used by builds that ship none (default: built-in std library)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	stateDir := flag.String("state-dir", "", "directory for the durable session store (empty = serve from memory only)")
	ckptEvery := flag.Int("checkpoint-every", 8, "journal records between compiled-image checkpoints of a session")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "grace period on SIGTERM for in-flight requests and checkpoint flushes")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint sent in Retry-After on load-shed 503 responses")
	flag.Parse()

	cfg := serve.Config{
		MaxSessions:     *maxSessions,
		MaxConcurrent:   *maxConcurrent,
		SessionSlots:    *sessionSlots,
		SessionQueue:    *sessionQueue,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxEvals:        *maxEvals,
		EnablePprof:     *pprofOn,
		CheckpointEvery: *ckptEvery,
		RetryAfter:      *retryAfter,
	}
	if *libPath != "" {
		lib, err := alloc.Load(*libPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specsynd:", err)
			os.Exit(1)
		}
		cfg.Library = lib
	}
	if *stateDir != "" {
		st, stats, err := store.Open(*stateDir, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specsynd:", err)
			os.Exit(1)
		}
		defer st.Close()
		log.Printf("specsynd: store %s: %d journal records, %d sessions, %d checkpoints"+
			" (truncated %d torn bytes, dropped %d corrupt checkpoints)",
			*stateDir, stats.Records, stats.Sessions, stats.Checkpoints,
			stats.TruncatedBytes, stats.CorruptCkpts)
		cfg.Store = st
	}

	srv := serve.New(cfg)
	expvar.Publish("specsynd", expvar.Func(func() any { return srv.Stats() }))

	if cfg.Store != nil {
		// Replay before (well, concurrently with) accepting traffic: the
		// listener opens immediately so probes can watch /readyz flip, but
		// every data-plane request is 503 until the replay finishes.
		go func() {
			start := time.Now()
			rep := srv.Recover(log.Printf)
			log.Printf("specsynd: recovered %d/%d sessions in %s (%d from checkpoints, %d rebuilt, %d failed)",
				rep.Restored+rep.Rebuilt, rep.Sessions, time.Since(start).Round(time.Millisecond),
				rep.Restored, rep.Rebuilt, rep.Failed)
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// Drain, not die: shed new work, give in-flight requests their own
		// -drain-timeout budget (NOT the request deadline cap), then flush
		// every dirty session so the next start recovers without a replay.
		inflight := srv.Stats().QueueDepth
		log.Printf("specsynd: draining (%d requests in flight, %s grace)", inflight, *drainTimeout)
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("specsynd: shutdown: %v (in-flight requests cut off)", err)
		}
		rep := srv.Drain(shutdownCtx)
		if rep.Dirty > 0 || rep.Errors > 0 {
			log.Printf("specsynd: flushed %d/%d dirty sessions (%d errors)",
				rep.Flushed, rep.Dirty, rep.Errors)
		}
		log.Println("specsynd: drained")
	}()

	log.Printf("specsynd: listening on %s (sessions %d, workers %d)",
		*addr, *maxSessions, *maxConcurrent)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("specsynd: ", err)
	}
	<-done // let the drain goroutine finish its flush before exiting
}
