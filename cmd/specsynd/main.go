// Command specsynd is the SpecSyn exploration daemon: it holds built SLIF
// design sessions in memory and serves estimation, partition-search and
// exploration requests over HTTP/JSON — build once, estimate thousands of
// times, for many designs and many clients at once.
//
//	specsynd -addr :8650
//
//	curl -X POST localhost:8650/v1/designs/fuzzy/build \
//	     -d "{\"vhdl\": $(jq -Rs . < testdata/fuzzy.vhd)}"
//	curl -X POST localhost:8650/v1/designs/fuzzy/estimate -d '{}'
//	curl -X POST localhost:8650/v1/designs/fuzzy/explore \
//	     -d '{"algo":"multi","legs":8,"max_evals":20000}'
//
// See the README's "specsynd" section for the full endpoint tour and
// DESIGN.md's "Serving" section for the concurrency contract.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specsyn/internal/alloc"
	"specsyn/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8650", "listen address")
	maxSessions := flag.Int("max-sessions", 64, "LRU cap on cached design sessions")
	maxConcurrent := flag.Int("max-concurrent", 0, "heavy requests in flight across all sessions (0 = GOMAXPROCS)")
	sessionSlots := flag.Int("session-slots", 2, "requests running concurrently per session")
	sessionQueue := flag.Int("session-queue", 8, "requests waiting per session before load-shedding with 503")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied deadlines")
	maxEvals := flag.Int("max-evals", 0, "cap on per-request cost-evaluation budgets (0 = unlimited)")
	libPath := flag.String("lib", "", "component library file used by builds that ship none (default: built-in std library)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	cfg := serve.Config{
		MaxSessions:    *maxSessions,
		MaxConcurrent:  *maxConcurrent,
		SessionSlots:   *sessionSlots,
		SessionQueue:   *sessionQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxEvals:       *maxEvals,
		EnablePprof:    *pprofOn,
	}
	if *libPath != "" {
		lib, err := alloc.Load(*libPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specsynd:", err)
			os.Exit(1)
		}
		cfg.Library = lib
	}

	srv := serve.New(cfg)
	expvar.Publish("specsynd", expvar.Func(func() any { return srv.Stats() }))

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Println("specsynd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.MaxTimeout)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	log.Printf("specsynd: listening on %s (sessions %d, workers %d)",
		*addr, *maxSessions, *maxConcurrent)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("specsynd: ", err)
	}
}
