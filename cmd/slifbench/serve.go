package main

// The -serve mode load-tests the exploration daemon end to end: an
// in-process serve.Server behind a real HTTP listener, N concurrent
// clients round-robining over M design sessions with a mixed
// estimate/search/explore/reload request stream — the daemon-shaped
// counterpart of -explore's raw engine throughput. Clients retry load-shed
// 503s with bounded backoff, honoring the server's Retry-After hint. It
// reports request throughput and latency percentiles, demands zero failed
// requests, and with -json commits the measurements to BENCH_serve.json.
//
// With -chaos the daemon runs against a durable store on a fault-injecting
// filesystem (torn writes, failed syncs, slow disk) and under admission
// pressure that actually sheds; after the load the run "crashes" the
// daemon, recovers a fresh one from the store, and demands zero recovery
// failures with every surviving session still serving estimates.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"specsyn/internal/faultinject"
	"specsyn/internal/serve"
	"specsyn/internal/store"
	"specsyn/internal/vhdl"
)

// serveDesigns are the sessions the load test builds and then hammers.
var serveDesigns = []string{"ans", "fuzzy", "vol"}

// opRecord is one completed request's accounting.
type opRecord struct {
	op      string
	dur     time.Duration
	ok      bool
	retries int
}

// opStats is the per-operation slice of BENCH_serve.json.
type opStats struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// serveRecord is BENCH_serve.json.
type serveRecord struct {
	Clients       int                `json:"clients"`
	Designs       []string           `json:"designs"`
	Requests      int                `json:"requests"`
	Failed        int                `json:"failed"`
	ThroughputRPS float64            `json:"throughput_rps"`
	P50Ms         float64            `json:"p50_ms"`
	P95Ms         float64            `json:"p95_ms"`
	P99Ms         float64            `json:"p99_ms"`
	EvalsTotal    int64              `json:"evals_total"`
	EvalsPerSec   float64            `json:"evals_per_sec"`
	Workers       int                `json:"workers"`
	Ops           map[string]opStats `json:"ops"`

	// Robustness accounting: Shed is the daemon's load-shed (503) count,
	// Retried the client requests that needed at least one retry. The
	// recovery fields are filled by -chaos's crash-restart phase.
	Shed             int64 `json:"shed"`
	Retried          int   `json:"retried"`
	Chaos            bool  `json:"chaos,omitempty"`
	StoreErrors      int64 `json:"store_errors,omitempty"`
	Checkpoints      int64 `json:"checkpoints,omitempty"`
	Recovered        int   `json:"recovered,omitempty"`
	RecoveryFailures int   `json:"recovery_failures,omitempty"`
}

func servePost(client *http.Client, url string, in any) (code int, retryAfter time.Duration, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter, nil
}

// servePostRetry posts with a bounded retry-with-backoff loop: a 503 is
// retried after the server's Retry-After hint (capped at a second so the
// load keeps moving), falling back to exponential backoff when the server
// sent none. Anything else — success, client error, transport failure —
// returns immediately.
func servePostRetry(client *http.Client, url string, in any) (code int, retries int, err error) {
	const maxRetries = 4
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		code, hint, err := servePost(client, url, in)
		if err != nil || code != http.StatusServiceUnavailable || attempt == maxRetries {
			return code, attempt, err
		}
		wait := backoff
		if hint > 0 {
			wait = hint
		}
		if wait > time.Second {
			wait = time.Second
		}
		time.Sleep(wait)
		backoff *= 2
	}
}

// editProcess returns src with a null statement prepended to its first
// process — the same one-behavior edit the rebuild benchmarks use, so
// reload traffic exercises the incremental patch path.
func editProcess(src string) string {
	df, err := vhdl.Parse(src)
	if err != nil {
		fatal(err)
	}
	ps := df.Architectures[0].Processes[0]
	ps.Body = append([]vhdl.Stmt{&vhdl.NullStmt{}}, ps.Body...)
	return vhdl.Format(df)
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1000
}

// runServe starts the daemon in-process and drives the mixed workload.
// With chaos it also runs the store on a fault-injecting filesystem, under
// admission pressure tight enough to shed, and finishes with a
// crash-restart recovery phase.
func runServe(dir string, clients, perClient int, jsonOut, chaos bool) {
	if clients <= 0 {
		clients = 8
	}
	if perClient <= 0 {
		perClient = 40
	}
	cfg := serve.Config{
		MaxSessions:  16,
		SessionSlots: clients,     // admit every client; contention is the point,
		SessionQueue: clients * 4, // load-shedding is covered by -chaos
		MaxEvals:     200_000,     // budget backstop per request
	}
	var stateDir string
	if chaos {
		var err error
		stateDir, err = os.MkdirTemp("", "slifbench-chaos-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(stateDir)
		// A misbehaving disk: a torn journal write early on, then every 9th
		// write fails, every 7th sync fails, and every 5th I/O stalls. The
		// daemon must keep serving through all of it.
		cfs := faultinject.NewChaosFS(nil, faultinject.FSPlan{
			TornWriteAt: 6,
			FailWriteAt: 9, EveryWrite: 9,
			FailSyncAt: 7,
			Delay:      200 * time.Microsecond, DelayEvery: 5,
		})
		st, _, err := store.Open(stateDir, cfs)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
		cfg.CheckpointEvery = 2 // checkpoint often so the store stays hot
		// Tight admission so the retry path actually runs: one slot and a
		// one-deep queue per session, so colliding clients get shed and must
		// come back on the Retry-After hint.
		cfg.SessionSlots = 1
		cfg.SessionQueue = 1
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	mode := ""
	if chaos {
		mode = " [chaos: faulty disk + tight admission]"
	}
	fmt.Printf("Serving load test: %d clients × %d requests over %d designs%s\n\n",
		clients, perClient, len(serveDesigns), mode)

	sources := make(map[string]string, len(serveDesigns))
	edited := make(map[string]string, len(serveDesigns))
	for _, name := range serveDesigns {
		src, err := os.ReadFile(filepath.Join(dir, name+".vhd"))
		if err != nil {
			fatal(err)
		}
		prob, err := os.ReadFile(filepath.Join(dir, name+".prob"))
		if err != nil {
			fatal(err)
		}
		req := serve.BuildRequest{VHDL: string(src), Profile: string(prob)}
		if name == "fuzzy" {
			ov, err := os.ReadFile(filepath.Join(dir, "fuzzy.ov"))
			if err != nil {
				fatal(err)
			}
			req.Overrides = string(ov)
		}
		code, _, err := servePostRetry(client, ts.URL+"/v1/designs/"+name+"/build", req)
		if err != nil {
			fatal(err)
		}
		if code != http.StatusOK {
			fatal(fmt.Errorf("build %s: status %d", name, code))
		}
		sources[name] = string(src)
		edited[name] = editProcess(string(src))
	}

	// The mixed stream: half estimates (the interactive hot path), then
	// searches, a parallel explore, and reloads alternating between the
	// edited and original source so every reload is a real incremental
	// rebuild — the single-writer path under reader pressure.
	records := make([][]opRecord, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			recs := make([]opRecord, 0, perClient)
			for j := 0; j < perClient; j++ {
				id := serveDesigns[(ci+j)%len(serveDesigns)]
				url := ts.URL + "/v1/designs/" + id
				var op string
				var in any
				switch j % 10 {
				case 0, 1, 2, 3, 4:
					op, in = "estimate", serve.EstimateRequest{}
					url += "/estimate"
				case 5, 6:
					op = "search"
					in = serve.SearchRequest{Algo: "greedy", Seed: int64(ci*1000 + j)}
					url += "/search"
				case 7:
					op = "explore"
					in = serve.ExploreRequest{Algo: "multi", Legs: 4, Seed: int64(ci*1000 + j), MaxEvals: 4000}
					url += "/explore"
				default:
					op = "reload"
					src := edited[id]
					if j%4 == 1 {
						src = sources[id]
					}
					in = serve.ReloadRequest{VHDL: src}
					url += "/reload"
				}
				t0 := time.Now()
				code, retries, err := servePostRetry(client, url, in)
				recs = append(recs, opRecord{
					op: op, dur: time.Since(t0),
					ok:      err == nil && code == http.StatusOK,
					retries: retries,
				})
			}
			records[ci] = recs
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []opRecord
	for _, recs := range records {
		all = append(all, recs...)
	}
	failed, retried := 0, 0
	byOp := make(map[string][]time.Duration)
	var durs []time.Duration
	for _, r := range all {
		if !r.ok {
			failed++
		}
		if r.retries > 0 {
			retried++
		}
		durs = append(durs, r.dur)
		byOp[r.op] = append(byOp[r.op], r.dur)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

	stats := fetchStats(client, ts.URL)
	rec := serveRecord{
		Clients: clients, Designs: serveDesigns,
		Requests:      len(all),
		Failed:        failed,
		ThroughputRPS: float64(len(all)) / elapsed.Seconds(),
		P50Ms:         percentile(durs, 0.50),
		P95Ms:         percentile(durs, 0.95),
		P99Ms:         percentile(durs, 0.99),
		EvalsTotal:    stats.Evals,
		EvalsPerSec:   float64(stats.Evals) / elapsed.Seconds(),
		Workers:       runtime.GOMAXPROCS(0),
		Ops:           make(map[string]opStats, len(byOp)),
		Shed:          stats.Rejects,
		Retried:       retried,
		Chaos:         chaos,
		StoreErrors:   stats.StoreErrors,
		Checkpoints:   stats.Checkpoints,
	}
	fmt.Printf("%-10s %8s %10s %10s %10s\n", "op", "count", "p50 ms", "p95 ms", "p99 ms")
	opNames := make([]string, 0, len(byOp))
	for op := range byOp {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames)
	for _, op := range opNames {
		ds := byOp[op]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		st := opStats{Count: len(ds), P50Ms: percentile(ds, 0.50), P95Ms: percentile(ds, 0.95), P99Ms: percentile(ds, 0.99)}
		rec.Ops[op] = st
		fmt.Printf("%-10s %8d %10.2f %10.2f %10.2f\n", op, st.Count, st.P50Ms, st.P95Ms, st.P99Ms)
	}
	fmt.Printf("\n%d requests in %.2fs: %.0f req/s, %d failed, %.0f evals/s (daemon: %d evals, %d builds, %d panics)\n",
		rec.Requests, elapsed.Seconds(), rec.ThroughputRPS, rec.Failed, rec.EvalsPerSec,
		stats.Evals, stats.Builds, stats.Panics)
	if rec.Shed > 0 || rec.Retried > 0 || rec.StoreErrors > 0 {
		fmt.Printf("robustness: %d shed by the daemon, %d requests retried, %d store errors absorbed, %d checkpoints\n",
			rec.Shed, rec.Retried, rec.StoreErrors, rec.Checkpoints)
	}

	if chaos {
		// Crash-restart phase: drop the daemon on the floor mid-life (no
		// drain, no flush — the store handle is simply abandoned, as SIGKILL
		// would leave it), then recover a fresh daemon from the same
		// directory on a clean filesystem and demand every surviving session
		// still serves estimates.
		ts.Close()
		st2, rstats, err := store.Open(stateDir, nil)
		if err != nil {
			fatal(fmt.Errorf("chaos: store did not reopen after crash: %w", err))
		}
		defer st2.Close()
		fmt.Printf("\nchaos: crash-restart: store reopened with %d sessions, %d checkpoints"+
			" (truncated %d torn bytes, dropped %d corrupt checkpoints)\n",
			rstats.Sessions, rstats.Checkpoints, rstats.TruncatedBytes, rstats.CorruptCkpts)
		srv2 := serve.New(serve.Config{MaxSessions: 16, MaxEvals: 200_000, Store: st2})
		rep := srv2.Recover(nil)
		ts2 := httptest.NewServer(srv2)
		defer ts2.Close()
		alive := 0
		for _, id := range st2.Sessions() {
			code, _, err := servePostRetry(client, ts2.URL+"/v1/designs/"+id+"/estimate", serve.EstimateRequest{})
			if err != nil || code != http.StatusOK {
				fatal(fmt.Errorf("chaos: recovered session %s does not estimate: status %d, err %v", id, code, err))
			}
			alive++
		}
		rec.Recovered = rep.Restored + rep.Rebuilt
		rec.RecoveryFailures = rep.Failed
		fmt.Printf("chaos: recovered %d/%d sessions (%d from checkpoints, %d rebuilt, %d failed), %d serving estimates\n",
			rec.Recovered, rep.Sessions, rep.Restored, rep.Rebuilt, rep.Failed, alive)
		if rep.Failed > 0 {
			fatal(fmt.Errorf("chaos: %d sessions failed to recover", rep.Failed))
		}
	}

	if jsonOut {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_serve.json")
	}
	if failed > 0 || stats.Failures > 0 || stats.Panics > 0 {
		fatal(fmt.Errorf("load test failed: %d failed requests, %d server failures, %d panics",
			failed, stats.Failures, stats.Panics))
	}
	fmt.Println()
}

func fetchStats(client *http.Client, base string) serve.Stats {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal(err)
	}
	return st
}
