// Command slifbench regenerates the paper's evaluation tables:
//
//	-fig4     Figure 4: Lines/BV/C and T-slif / T-est per example
//	-formats  §5: SLIF-AG vs ADD(VT) vs CDFG node/edge counts (fuzzy)
//	-n2       §5: n² partitioning-computation counts per format
//	-explore  §5 claim: thousands of designs estimated per second
//	-portfolio adaptive portfolio sweep: anytime curves, greedy comparison
//	-buswidth bus-width sweep: exec time & I/O vs physical bus wires
//	-granularity §2.2's knob: basic blocks as procedures
//	-rebuild  incremental edit-aware rebuild vs full build
//	-serve    daemon load test: N clients × M designs, mixed traffic
//
// With no mode flag, everything except -serve runs. -testdata points at
// the directory holding the four example specifications (default
// "testdata").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"specsyn/internal/builder"
	"specsyn/internal/cdfg"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/outline"
	"specsyn/internal/partition"
	"specsyn/internal/sem"
	"specsyn/internal/specsyn"
	"specsyn/internal/syngen"
	"specsyn/internal/vhdl"
	"specsyn/internal/vt"
)

var examples = []string{"ans", "ether", "fuzzy", "vol"}

func main() {
	dir := flag.String("testdata", "testdata", "directory with the example .vhd/.prob files")
	fig4 := flag.Bool("fig4", false, "regenerate the Figure 4 table")
	formats := flag.Bool("formats", false, "regenerate the format-size comparison")
	n2 := flag.Bool("n2", false, "regenerate the n^2 computation-count comparison")
	explore := flag.Bool("explore", false, "measure partitions estimated per second")
	portfolio := flag.Bool("portfolio", false, "adaptive portfolio sweep: anytime curves and the never-worse-than-greedy gate")
	jsonOut := flag.Bool("json", false, "also write the -explore measurements to BENCH_explore.json")
	workers := flag.Int("workers", 0, "worker pool size for the parallel explore run (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the explore run; a cut-short run reports its partial best (0 = none)")
	buswidth := flag.Bool("buswidth", false, "sweep bus widths on the fuzzy example")
	gran := flag.Bool("granularity", false, "basic-block granularity comparison")
	rebuild := flag.Bool("rebuild", false, "benchmark incremental rebuild against full build")
	serveMode := flag.Bool("serve", false, "load-test the exploration daemon (specsynd) in-process")
	clients := flag.Int("clients", 8, "concurrent clients for the -serve load test")
	requests := flag.Int("requests", 40, "requests per client for the -serve load test")
	chaos := flag.Bool("chaos", false, "run -serve against a fault-injecting store with tight admission, then crash and recover")
	flag.Parse()

	// -serve is opt-in only: a load test inside the run-everything default
	// would double every CI lane's wall clock for no extra coverage.
	all := !*fig4 && !*formats && !*n2 && !*explore && !*portfolio && !*buswidth && !*gran && !*rebuild && !*serveMode
	if *fig4 || all {
		runFig4(*dir)
	}
	if *formats || all {
		runFormats(*dir)
	}
	if *n2 || all {
		runN2(*dir)
	}
	// The portfolio sweep self-gates (monotone curves, adaptive ≤ greedy)
	// and its records ride along in the -explore JSON output.
	var portRecords []portfolioRecord
	if *portfolio || all || (*explore && *jsonOut) {
		portRecords = runPortfolio(*dir, *workers)
	}
	if *explore || all {
		runExplore(*dir, *workers, *timeout, *jsonOut, portRecords)
	}
	if *buswidth || all {
		runBusWidth(*dir)
	}
	if *gran || all {
		runGranularity(*dir)
	}
	if *rebuild || all {
		runRebuild(*dir, *jsonOut)
	}
	if *serveMode {
		runServe(*dir, *clients, *requests, *jsonOut, *chaos)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slifbench:", err)
	os.Exit(1)
}

// loadEnv builds the SLIF environment for one example.
func loadEnv(dir, name string) *specsyn.Env {
	env := specsyn.New()
	if err := env.LoadVHDLFile(filepath.Join(dir, name+".vhd")); err != nil {
		fatal(err)
	}
	if err := env.LoadProfileFile(filepath.Join(dir, name+".prob")); err != nil {
		fatal(err)
	}
	if err := env.LoadLibraryFile(filepath.Join(dir, "std.lib")); err != nil {
		fatal(err)
	}
	if name == "fuzzy" {
		if err := env.LoadOverridesFile(filepath.Join(dir, "fuzzy.ov")); err != nil {
			fatal(err)
		}
	}
	if err := env.Build(); err != nil {
		fatal(err)
	}
	return env
}

func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}

// runFig4 reproduces the paper's Figure 4: for each example, the size of
// the spec and the SLIF, the time to build SLIF with all annotations, and
// the time to obtain size/pin/bitrate/performance estimates for a
// processor-ASIC partition.
func runFig4(dir string) {
	fmt.Println("Figure 4: time to build SLIF and to estimate from it")
	fmt.Println("(paper, Sparc 2: ans 2.20/0.00  ether 10.40/0.00  fuzzy 0.46/0.00  vol 0.34/0.00 s)")
	fmt.Println()
	fmt.Printf("%-8s %7s %5s %5s %12s %12s\n", "", "Lines", "BV", "C", "T-slif (s)", "T-est (s)")
	for _, name := range examples {
		env := loadEnv(dir, name)
		st := env.Graph.Stats()

		// The partition estimated: behaviors and scalars on the CPU,
		// the heaviest arrays on the ASIC side of the architecture.
		pt, err := env.DefaultPartition()
		if err != nil {
			fatal(err)
		}
		asic := env.Graph.ProcByName("asic")
		for _, n := range env.Graph.Variables() {
			if n.StorageBits > 2048 && asic != nil {
				if err := pt.Assign(n, asic); err != nil {
					fatal(err)
				}
			}
		}

		// T-est: one full size/pin/bitrate/performance report.
		rep, testDur, err := env.Estimate(pt, estimate.Options{})
		if err != nil {
			fatal(err)
		}
		_ = rep
		fmt.Printf("%-8s %7d %5d %5d %12.4f %12.6f\n",
			name, countLines(filepath.Join(dir, name+".vhd")),
			st.BV, st.Channels, env.BuildTime.Seconds(), testDur.Seconds())
	}
	fmt.Println()
}

// runFormats reproduces the §5 format-size comparison on the fuzzy example.
func runFormats(dir string) {
	fmt.Println("Format-size comparison (fuzzy example)")
	fmt.Println("(paper: SLIF-AG 35/56, ADD >450/400, CDFG >1100/900)")
	fmt.Println()
	src, err := os.ReadFile(filepath.Join(dir, "fuzzy.vhd"))
	if err != nil {
		fatal(err)
	}
	env := loadEnv(dir, "fuzzy")
	sg := env.Graph.Stats()
	vg, err := vt.BuildVHDL(string(src))
	if err != nil {
		fatal(err)
	}
	cg, err := cdfg.BuildVHDL(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %8s %8s\n", "format", "nodes", "edges")
	fmt.Printf("%-10s %8d %8d\n", "SLIF-AG", sg.BV, sg.Channels)
	fmt.Printf("%-10s %8d %8d\n", "VT/ADD", vg.Stats().Nodes, vg.Stats().Edges)
	fmt.Printf("%-10s %8d %8d\n", "CDFG", cg.Stats().Nodes, cg.Stats().Edges)
	fmt.Println()
}

// runN2 reproduces the §5 computation-count argument: the cost of an n²
// partitioning algorithm on each format's node count, plus an actual
// clustering pass over the SLIF-AG.
func runN2(dir string) {
	fmt.Println("n^2 partitioning computations by format (fuzzy example)")
	fmt.Println("(paper: 1225 / 202500 / 1210000)")
	fmt.Println()
	src, err := os.ReadFile(filepath.Join(dir, "fuzzy.vhd"))
	if err != nil {
		fatal(err)
	}
	env := loadEnv(dir, "fuzzy")
	vg, err := vt.BuildVHDL(string(src))
	if err != nil {
		fatal(err)
	}
	cg, err := cdfg.BuildVHDL(string(src))
	if err != nil {
		fatal(err)
	}
	rows := []struct {
		name string
		n    int
	}{
		{"SLIF-AG", env.Graph.Stats().BV},
		{"VT/ADD", vg.Stats().Nodes},
		{"CDFG", cg.Stats().Nodes},
	}
	fmt.Printf("%-10s %8s %14s\n", "format", "n", "n^2")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %14d\n", r.name, r.n, r.n*r.n)
	}

	// And a real n² algorithm on the SLIF-AG: hierarchical clustering to
	// as many clusters as allocated components.
	start := time.Now()
	_, computations, err := partition.HierarchicalClusters(env.Graph, 3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nactual clustering on SLIF-AG: %d pair computations in %v\n\n",
		computations, time.Since(start))
}

// exploreRecord is one subject's row of the explore run, as written to
// BENCH_explore.json.
type exploreRecord struct {
	Example        string  `json:"example"`
	Evals          int     `json:"evals"`
	SeqDesignsSec  float64 `json:"seq_designs_per_sec"`
	SnapDesignsSec float64 `json:"snap_designs_per_sec"`
	ParDesignsSec  float64 `json:"par_designs_per_sec"`
	BestCost       float64 `json:"best_cost"`
	NsPerTrial     float64 `json:"ns_per_trial"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	Workers        int     `json:"workers"`
}

// exploreSubjects: the four paper examples plus generated scaling subjects.
func exploreSubjects(dir string) []struct {
	name string
	g    *core.Graph
} {
	var subjects []struct {
		name string
		g    *core.Graph
	}
	for _, name := range examples {
		subjects = append(subjects, struct {
			name string
			g    *core.Graph
		}{name, loadEnv(dir, name).Graph})
	}
	for _, procs := range []int{8, 32} {
		subjects = append(subjects, struct {
			name string
			g    *core.Graph
		}{fmt.Sprintf("syn-p%d", procs), synGraph(syngen.Config{Seed: 7, Processes: procs})})
	}
	return subjects
}

// synGraph generates and builds one synthetic subject with the standard
// two-processor/one-bus allocation.
func synGraph(cfg syngen.Config) *core.Graph {
	src := syngen.Generate(cfg)
	g, err := builder.BuildVHDL(src, builder.Options{})
	if err != nil {
		fatal(err)
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10"})
	g.AddProcessor(&core.Processor{Name: "asic", TypeName: "asic50", Custom: true})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	return g
}

// portfolioRecord is one subject's row of the adaptive portfolio sweep,
// committed under the "portfolio" key of BENCH_explore.json. Curve is the
// anytime trajectory: the incumbent cost after every scheduling round.
type portfolioRecord struct {
	Example       string                 `json:"example"`
	Nodes         int                    `json:"nodes"`
	GreedyCost    float64                `json:"greedy_cost"`
	AdaptiveCost  float64                `json:"adaptive_cost"`
	Rounds        int                    `json:"rounds"`
	LegsKilled    int                    `json:"legs_killed"`
	LegsRespawned int                    `json:"legs_respawned"`
	Evals         int                    `json:"evals"`
	Workers       int                    `json:"workers"`
	Curve         []partition.CurvePoint `json:"curve"`
}

// portfolioSubjects: the paper examples plus synthetic subjects up to a
// thousand processes. syn-p1024 uses the lean generator shape (single
// variable, no procedures/arrays) so the subject stresses search scale,
// not statement-body size.
func portfolioSubjects(dir string) []struct {
	name string
	g    *core.Graph
} {
	var subjects []struct {
		name string
		g    *core.Graph
	}
	for _, name := range examples {
		subjects = append(subjects, struct {
			name string
			g    *core.Graph
		}{name, loadEnv(dir, name).Graph})
	}
	for _, procs := range []int{32, 128} {
		subjects = append(subjects, struct {
			name string
			g    *core.Graph
		}{fmt.Sprintf("syn-p%d", procs), synGraph(syngen.Config{Seed: 7, Processes: procs})})
	}
	subjects = append(subjects, struct {
		name string
		g    *core.Graph
	}{"syn-p1024", synGraph(syngen.Config{
		Seed: 7, Processes: 1024, ProcsPer: -1, VarsPer: 1, ArraysPer: -1, StmtsPer: 2, SharedSigs: 1,
	})})
	return subjects
}

// tightenSoftware caps the software processor at 60% of the design's
// all-software size, so the trivial everything-on-cpu partition violates
// and the sweep's curves track a real hardware/software trade instead of
// a flat zero.
func tightenSoftware(g *core.Graph) {
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	rep, err := estimate.New(g, pt, estimate.Options{}).Report()
	if err != nil {
		fatal(err)
	}
	for _, c := range rep.Comps {
		if c.Name == g.Procs[0].Name && c.Size > 0 {
			g.Procs[0].SizeCon = c.Size * 0.6
		}
	}
}

// runPortfolio sweeps the adaptive orchestrator over every subject and
// self-gates the two properties CI relies on: the anytime curve is
// monotone non-increasing, and the adaptive result never loses to the
// canonical greedy construction (leg 0's first round IS that greedy run).
func runPortfolio(dir string, workers int) []portfolioRecord {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("Adaptive portfolio sweep (best-cost-vs-evals anytime curves), %d workers\n", workers)
	fmt.Println()
	fmt.Printf("%-10s %6s %12s %13s %7s %7s %9s %7s %9s\n",
		"", "nodes", "greedy cost", "adaptive", "rounds", "killed", "respawned", "evals", "ms")
	var records []portfolioRecord
	for _, sub := range portfolioSubjects(dir) {
		name, g := sub.name, sub.g
		tightenSoftware(g)
		mkCfg := func() partition.Config {
			ev := partition.NewEvaluator(g, partition.Constraints{}, partition.DefaultWeights(), estimate.Options{})
			return partition.Config{Eval: ev, Policy: partition.SingleBus(g.Buses[0]), Seed: 42}
		}
		greedy, err := partition.Greedy(context.Background(), g, mkCfg())
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := partition.MultiStart(context.Background(), g, mkCfg(), partition.ParallelOptions{
			Workers: workers, Legs: 6, Adaptive: true, Share: true,
			RoundEvals: 256, MaxRounds: 5,
		})
		if err != nil {
			fatal(err)
		}
		dur := time.Since(start)
		rep := res.Report
		if res.Cost > greedy.Cost+1e-9 {
			fatal(fmt.Errorf("%s: adaptive cost %v worse than greedy %v", name, res.Cost, greedy.Cost))
		}
		for i := 1; i < len(rep.Curve); i++ {
			if rep.Curve[i].BestCost > rep.Curve[i-1].BestCost {
				fatal(fmt.Errorf("%s: anytime curve not monotone at round %d (%v > %v)",
					name, i, rep.Curve[i].BestCost, rep.Curve[i-1].BestCost))
			}
		}
		records = append(records, portfolioRecord{
			Example: name, Nodes: len(g.Nodes),
			GreedyCost: greedy.Cost, AdaptiveCost: res.Cost,
			Rounds: rep.Rounds, LegsKilled: rep.LegsKilled, LegsRespawned: rep.LegsRespawned,
			Evals: rep.Evals, Workers: workers, Curve: rep.Curve,
		})
		fmt.Printf("%-10s %6d %12.4f %13.4f %7d %7d %9d %7d %9.1f\n",
			name, len(g.Nodes), greedy.Cost, res.Cost,
			rep.Rounds, rep.LegsKilled, rep.LegsRespawned, rep.Evals,
			float64(dur.Microseconds())/1000)
	}
	fmt.Println()
	return records
}

// moveTrialStats measures the per-trial hot path of the snapshot engine on
// one graph: the nanoseconds and heap allocations of a single incremental
// move costed through the IndexedPolicy (steady state, past the refresh
// interval).
func moveTrialStats(g *core.Graph) (nsPerTrial, allocsPerOp float64) {
	ev := partition.NewEvaluator(g, partition.Constraints{}, partition.DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, partition.SingleBus(g.Buses[0]))
	if err != nil {
		fatal(err)
	}
	d.UseIndexedPolicy(partition.SingleBusIdx(g, g.Buses[0]))
	var node *core.Node
	var dest core.Component
	for _, n := range g.Nodes {
		for _, c := range partition.Allowed(g, n) {
			if c != pt.BvComp(n) {
				node, dest = n, c
				break
			}
		}
		if node != nil {
			break
		}
	}
	if node == nil {
		return 0, 0
	}
	trial := func() {
		if _, err := d.MoveCost(node, dest); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < 256; i++ { // warm past a full refresh
		trial()
	}
	allocsPerOp = testing.AllocsPerRun(400, trial)
	const rounds = 4000
	start := time.Now()
	for i := 0; i < rounds; i++ {
		trial()
	}
	return float64(time.Since(start).Nanoseconds()) / rounds, allocsPerOp
}

// runExplore demonstrates the estimation-speed claim: how many complete
// partitions per second the §3 equations evaluate — sequentially through
// the pointer-walking estimator, through the snapshot-native explorer on
// the compiled CSR arrays, and sharded across the parallel engine's worker
// pool. All three land on the same best cost at the same seed (the
// parallel run bit-identically, the snapshot run to summation tolerance);
// only the throughput changes.
func runExplore(dir string, workers int, timeout time.Duration, jsonOut bool, portRecords []portfolioRecord) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opt := partition.ParallelOptions{Workers: workers}
	fmt.Printf("Estimation throughput (\"algorithms that explore thousands of possible designs\"), %d workers\n", workers)
	fmt.Println()
	fmt.Printf("%-8s %6s %14s %15s %14s %9s %12s\n", "", "evals", "seq designs/s", "snap designs/s", "par designs/s", "speedup", "best cost")
	var records []exploreRecord
	for _, sub := range exploreSubjects(dir) {
		name, g := sub.name, sub.g
		mkCfg := func(indexed bool) partition.Config {
			ev := partition.NewEvaluator(g, partition.Constraints{}, partition.DefaultWeights(), estimate.Options{})
			cfg := partition.Config{Eval: ev, Policy: partition.SingleBus(g.Buses[0]), Seed: 42, MaxIters: 2000}
			if indexed {
				cfg.IdxPolicy = partition.SingleBusIdx(g, g.Buses[0])
			}
			return cfg
		}
		start := time.Now()
		seq, err := partition.Random(ctx, g, mkCfg(false))
		if err != nil {
			fatal(err)
		}
		seqDur := time.Since(start)
		start = time.Now()
		snap, err := partition.SnapRandom(ctx, g, mkCfg(true))
		if err != nil {
			fatal(err)
		}
		snapDur := time.Since(start)
		start = time.Now()
		par, err := partition.ParallelSnapRandom(ctx, g, mkCfg(true), opt)
		if err != nil {
			fatal(err)
		}
		parDur := time.Since(start)
		// A deadline cuts the runs short at different points, so the
		// identity checks only hold for complete runs.
		if !snap.Partial && !par.Report.Partial && par.Cost != snap.Cost {
			fatal(fmt.Errorf("%s: parallel best cost %v != sequential %v at equal seed", name, par.Cost, snap.Cost))
		}
		if diff := snap.Cost - seq.Cost; !seq.Partial && !snap.Partial && (diff > 1e-9 || diff < -1e-9) {
			fatal(fmt.Errorf("%s: snapshot best cost %v != pointer-path %v at equal seed", name, snap.Cost, seq.Cost))
		}
		if seq.Partial || snap.Partial || par.Report.Partial {
			fmt.Printf("%-8s (cut short by -timeout; partial bests: seq %.4f, snap %.4f, par %.4f)\n", name, seq.Cost, snap.Cost, par.Cost)
			continue
		}
		nsPerTrial, allocs := moveTrialStats(g)
		rec := exploreRecord{
			Example:        name,
			Evals:          seq.Evals,
			SeqDesignsSec:  float64(seq.Evals) / seqDur.Seconds(),
			SnapDesignsSec: float64(snap.Evals) / snapDur.Seconds(),
			ParDesignsSec:  float64(par.Evals) / parDur.Seconds(),
			BestCost:       seq.Cost,
			NsPerTrial:     nsPerTrial,
			AllocsPerOp:    allocs,
			Workers:        workers,
		}
		records = append(records, rec)
		fmt.Printf("%-8s %6d %14.0f %15.0f %14.0f %8.2fx %12.4f\n",
			name, seq.Evals,
			rec.SeqDesignsSec, rec.SnapDesignsSec, rec.ParDesignsSec,
			seqDur.Seconds()/parDur.Seconds(), seq.Cost)
	}
	fmt.Println()
	if jsonOut {
		out := struct {
			Throughput []exploreRecord   `json:"throughput"`
			Portfolio  []portfolioRecord `json:"portfolio"`
		}{records, portRecords}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_explore.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_explore.json")
	}
}

// runBusWidth sweeps the physical bus width for a fixed hardware/software
// split of the fuzzy controller. TransferTime(c) = ceil(bits/width) × bdt
// (eq. 1), so widening the bus collapses multi-transfer accesses and the
// process execution time steps down, while IO(p) (eq. 6) — the pins the
// bus costs on every component it crosses — grows linearly. This is the
// size/performance trade the paper's I/O metric exists to expose.
func runBusWidth(dir string) {
	fmt.Println("Bus-width sweep (fuzzy, datapath on the ASIC)")
	fmt.Println()
	fmt.Printf("%8s %16s %10s\n", "width", "exectime (us)", "IO pins")
	for _, width := range []int{4, 8, 16, 32, 64} {
		env := loadEnv(dir, "fuzzy")
		g := env.Graph
		g.BusByName("sysbus").BitWidth = width
		pt, err := env.DefaultPartition()
		if err != nil {
			fatal(err)
		}
		asic := g.ProcByName("asic")
		for _, name := range []string{
			"evaluaterule", "convolve", "computecentroid", "min", "max",
			"mr1", "mr2", "tmr1", "tmr2", "conv", "trunc", "sum", "wsum",
		} {
			if n := g.NodeByName(name); n != nil {
				if err := pt.Assign(n, asic); err != nil {
					fatal(err)
				}
			}
		}
		est := estimate.New(g, pt, estimate.Options{})
		et, err := est.Exectime(g.NodeByName("fuzzymain"))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8d %16.1f %10d\n", width, et, est.IO(asic))
	}
	fmt.Println()
}

// runGranularity demonstrates §2.2's granularity knob: "finer granularity
// can be obtained by treating basic blocks as procedures". Each example is
// built at process/procedure granularity and again with basic blocks
// outlined into procedures; the table shows how the SLIF grows and what a
// full estimate costs at each granularity.
func runGranularity(dir string) {
	fmt.Println("Granularity: processes/procedures vs basic blocks as procedures (§2.2)")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %14s %14s\n", "", "coarse BV/C", "fine BV/C", "T-est coarse", "T-est fine")
	for _, name := range examples {
		src, err := os.ReadFile(filepath.Join(dir, name+".vhd"))
		if err != nil {
			fatal(err)
		}
		coarse, err := builder.BuildVHDL(string(src), builder.Options{})
		if err != nil {
			fatal(err)
		}
		fineAST, err := vhdl.Parse(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s: reparse for outlining failed: %w", name, err))
		}
		fineDF := outline.Transform(fineAST, outline.Options{})
		fineD, err := sem.Elaborate(fineDF)
		if err != nil {
			fatal(err)
		}
		fine, err := builder.Build(fineD, builder.Options{})
		if err != nil {
			fatal(err)
		}
		tEst := func(g likeGraph) time.Duration {
			g.addStd()
			start := time.Now()
			est := estimate.New(g.g, g.pt, estimate.Options{})
			if _, err := est.Report(); err != nil {
				fatal(err)
			}
			return time.Since(start)
		}
		cG := likeGraph{g: coarse}
		fG := likeGraph{g: fine}
		tc, tf := tEst(cG), tEst(fG)
		fmt.Printf("%-8s %12s %12s %14v %14v\n", name,
			fmt.Sprintf("%d/%d", coarse.Stats().BV, coarse.Stats().Channels),
			fmt.Sprintf("%d/%d", fine.Stats().BV, fine.Stats().Channels),
			tc, tf)
	}
	fmt.Println()
}

// likeGraph pairs a bare graph with a default allocation and partition.
type likeGraph struct {
	g  *core.Graph
	pt *core.Partition
}

func (l *likeGraph) addStd() {
	cpu := &core.Processor{Name: "cpu", TypeName: "proc10"}
	l.g.AddProcessor(cpu)
	l.g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	l.pt = core.AllToProcessor(l.g, cpu, l.g.Buses[0])
}

// rebuildRecord is one subject's row of the -rebuild run, as written to
// BENCH_build.json.
type rebuildRecord struct {
	Example    string  `json:"example"`
	FullNs     float64 `json:"full_build_ns_per_op"`
	IncNs      float64 `json:"incremental_rebuild_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	Changed    int     `json:"changed"`
	Dependents int     `json:"dependents"`
}

// rebuildSubject is one -rebuild measurement subject: a previously built
// graph paired with the source and options it was built from.
type rebuildSubject struct {
	name string
	src  string
	opts builder.Options
	g    *core.Graph
}

// rebuildSubjects streams the four paper examples (with their profiles and
// overrides, as a session would build them) and the generated scaling
// subjects one at a time, so only the subject under measurement is live —
// a resident pile of large graphs would tax the GC and skew both sides of
// the comparison.
func rebuildSubjects(dir string, visit func(rebuildSubject)) {
	for _, name := range examples {
		env := loadEnv(dir, name)
		visit(rebuildSubject{name, env.Source, builder.Options{Profile: env.Prof, Techs: env.Lib.Techs, Overrides: env.Overrides}, env.Graph})
	}
	for _, procs := range []int{8, 32, 128} {
		src := syngen.Generate(syngen.Config{Seed: 7, Processes: procs})
		g, err := builder.BuildVHDL(src, builder.Options{})
		if err != nil {
			fatal(err)
		}
		visit(rebuildSubject{fmt.Sprintf("syn-p%d", procs), src, builder.Options{}, g})
	}
}

// runRebuild measures the incremental-rebuild claim: after a one-behavior
// edit (a null statement inserted into the first process), Rebuild patches
// the previous graph copy-on-write instead of reconstructing it, so the
// edit-to-graph latency drops well below a full parse/elaborate/build. A
// unique trailing comment per iteration defeats the front-end cache on the
// edited source, so every trial pays the real parse cost; the previous
// source stays cached, as it would across a session's reload chain.
func runRebuild(dir string, jsonOut bool) {
	fmt.Println("Incremental rebuild after a one-behavior edit vs full build")
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %9s %9s %11s\n", "", "full ns/op", "incr ns/op", "speedup", "changed", "dependents")
	var records []rebuildRecord
	iter := 0
	rebuildSubjects(dir, func(sub rebuildSubject) {
		df, err := vhdl.Parse(sub.src)
		if err != nil {
			fatal(err)
		}
		ps := df.Architectures[0].Processes[0]
		ps.Body = append([]vhdl.Stmt{&vhdl.NullStmt{}}, ps.Body...)
		edited := vhdl.Format(df)
		uniq := func() string {
			iter++
			return fmt.Sprintf("%s-- edit %d\n", edited, iter)
		}

		// Once per subject: the patched graph must be byte-identical to a
		// full build of the edited source, and the delta a real increment.
		g2, delta, err := builder.Rebuild(sub.g, sub.src, edited, sub.opts)
		if err != nil {
			fatal(err)
		}
		if delta.Full {
			fatal(fmt.Errorf("%s: one-behavior edit fell back to a full build (%s)", sub.name, delta.Reason))
		}
		full2, err := builder.BuildVHDL(edited, sub.opts)
		if err != nil {
			fatal(err)
		}
		if !bytesEqualCompiled(g2, full2) {
			fatal(fmt.Errorf("%s: incremental rebuild diverges from full build", sub.name))
		}

		fullRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := builder.BuildVHDL(uniq(), sub.opts); err != nil {
					fatal(err)
				}
			}
		})
		prev, prevSrc := sub.g, sub.src
		incRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := builder.Rebuild(prev, prevSrc, uniq(), sub.opts); err != nil {
					fatal(err)
				}
			}
		})
		rec := rebuildRecord{
			Example:    sub.name,
			FullNs:     float64(fullRes.NsPerOp()),
			IncNs:      float64(incRes.NsPerOp()),
			Speedup:    float64(fullRes.NsPerOp()) / float64(incRes.NsPerOp()),
			Changed:    len(delta.Changed),
			Dependents: len(delta.Dependents),
		}
		records = append(records, rec)
		fmt.Printf("%-8s %14.0f %14.0f %8.2fx %9d %11d\n",
			rec.Example, rec.FullNs, rec.IncNs, rec.Speedup, rec.Changed, rec.Dependents)
	})
	fmt.Println()
	if jsonOut {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_build.json", append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_build.json")
	}
}

// bytesEqualCompiled compares two graphs by their compiled binary form,
// ignoring any allocation components.
func bytesEqualCompiled(a, b *core.Graph) bool {
	ab, err := core.Compile(a.Clone(false))
	if err != nil {
		return false
	}
	bb, err := core.Compile(b.Clone(false))
	if err != nil {
		return false
	}
	ad, err := ab.MarshalBinary()
	if err != nil {
		return false
	}
	bd, err := bb.MarshalBinary()
	if err != nil {
		return false
	}
	return string(ad) == string(bd)
}
