// Differential and performance coverage for the incremental delta-cost
// evaluator on the real paper examples (the internal/partition tests cover
// it on synthetic graphs). The differential test is the oracle contract of
// the tentpole: on every Fig. 4 example and the generated scaling
// subjects, long random move sequences through MoveCost/Apply/Undo must
// agree with a full recompute within 1e-9 — and it runs under -race in CI.

package bench

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
)

// deltaSubjectConstraints activates every cost term: a deadline on the
// first process and a bitrate cap on the first bus, both tight.
func deltaSubjectConstraints(g *core.Graph) partition.Constraints {
	cons := partition.Constraints{
		Deadline:   map[string]float64{},
		MaxBusRate: map[string]float64{g.Buses[0].Name: 1},
	}
	if procs := g.Processes(); len(procs) > 0 {
		cons.Deadline[procs[0].Name] = 1
	}
	return cons
}

// TestDeltaDifferentialExamples runs ≥1000 random moves per subject,
// checking every incremental MoveCost against a full-recompute oracle and
// periodically cross-checking the committed state. Each subject runs
// twice: once through the pointer bus policy ("ptr") and once with the
// snapshot-native IndexedPolicy installed ("idx"), where move trials never
// touch a Partition at all — both must pin to the same oracle.
func TestDeltaDifferentialExamples(t *testing.T) {
	const steps = 1000
	for _, sub := range exploreGraphs(t) {
		sub := sub
		for _, mode := range []string{"ptr", "idx"} {
			mode := mode
			t.Run(sub.name+"/"+mode, func(t *testing.T) {
				g := sub.g
				cons := deltaSubjectConstraints(g)
				ev := partition.NewEvaluator(g, cons, partition.DefaultWeights(), estimate.Options{})
				oracle := partition.NewEvaluator(g, cons, partition.DefaultWeights(), estimate.Options{})
				policy := partition.SingleBus(g.Buses[0])
				pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
				d, err := ev.Delta(pt, policy)
				if err != nil {
					t.Fatalf("Delta on %s: %v", sub.name, err)
				}
				if mode == "idx" {
					d.UseIndexedPolicy(partition.SingleBusIdx(g, g.Buses[0]))
				}
				rng := rand.New(rand.NewSource(11))
				for step := 0; step < steps; step++ {
					n := g.Nodes[rng.Intn(len(g.Nodes))]
					cands := partition.Allowed(g, n)
					if len(cands) == 0 {
						continue
					}
					to := cands[rng.Intn(len(cands))]

					got, err := d.MoveCost(n, to)
					if err != nil {
						t.Fatalf("step %d: MoveCost(%s→%s): %v", step, n.Name, to.CompName(), err)
					}
					trial := pt.Clone()
					if err := trial.Assign(n, to); err != nil {
						t.Fatal(err)
					}
					if err := partition.ApplyBusPolicy(trial, policy); err != nil {
						t.Fatal(err)
					}
					want, err := oracle.Cost(trial)
					if err != nil {
						t.Fatalf("step %d: oracle: %v", step, err)
					}
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("step %d: MoveCost(%s→%s) = %.15g, oracle %.15g (Δ %g)",
							step, n.Name, to.CompName(), got, want, got-want)
					}

					switch r := rng.Float64(); {
					case r < 0.45:
						if err := d.Apply(n, to); err != nil {
							t.Fatalf("step %d: Apply: %v", step, err)
						}
					case r < 0.55:
						if err := d.Apply(n, to); err != nil {
							t.Fatalf("step %d: Apply: %v", step, err)
						}
						if err := d.Undo(); err != nil {
							t.Fatalf("step %d: Undo: %v", step, err)
						}
					}
					if step%127 == 0 {
						got, err := d.Cost()
						if err != nil {
							t.Fatalf("step %d: Cost: %v", step, err)
						}
						want, err := oracle.Cost(pt)
						if err != nil {
							t.Fatalf("step %d: oracle commit: %v", step, err)
						}
						if math.Abs(got-want) > 1e-9 {
							t.Fatalf("step %d: committed Cost = %.15g, oracle %.15g", step, got, want)
						}
					}
				}
			})
		}
	}
}

// moveBenchGraph resolves a move-benchmark subject name: the paper
// examples by name, or "syn-pN" for a generated specification with N
// processes.
func moveBenchGraph(b *testing.B, name string) *core.Graph {
	b.Helper()
	var procs int
	if n, err := fmt.Sscanf(name, "syn-p%d", &procs); n == 1 && err == nil {
		return synGraph(b, procs)
	}
	return loadEnv(b, name).Graph
}

// moveBenchSetup binds a delta evaluator to an example and precomputes a
// rotation of (node, destination) moves so the benchmark loop measures
// only MoveCost. With indexed set, the snapshot-native bus policy is
// installed, so each trial runs entirely on the compiled arrays.
func moveBenchSetup(b *testing.B, name string, indexed bool) (*partition.DeltaEval, []*core.Node, []core.Component) {
	b.Helper()
	g := moveBenchGraph(b, name)
	ev := partition.NewEvaluator(g, deltaSubjectConstraints(g), partition.DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, partition.SingleBus(g.Buses[0]))
	if err != nil {
		b.Fatal(err)
	}
	if indexed {
		d.UseIndexedPolicy(partition.SingleBusIdx(g, g.Buses[0]))
	}
	var nodes []*core.Node
	var dests []core.Component
	for _, n := range g.Nodes {
		for _, c := range partition.Allowed(g, n) {
			if c != pt.BvComp(n) {
				nodes = append(nodes, n)
				dests = append(dests, c)
				break
			}
		}
	}
	if len(nodes) == 0 {
		b.Fatal("no movable nodes")
	}
	return d, nodes, dests
}

// BenchmarkMoveCost measures one incremental move trial — the partitioning
// inner loop after the delta rewrite. The acceptance bar: ≥5× fewer ns/op
// than BenchmarkFullCost on ether and 0 allocs/op in steady state (CI runs
// it with -benchmem and fails on a non-zero allocation rate).
func BenchmarkMoveCost(b *testing.B) {
	for _, name := range []string{"ans", "ether"} {
		b.Run(name, func(b *testing.B) {
			d, nodes, dests := moveBenchSetup(b, name, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(nodes)
				if _, err := d.MoveCost(nodes[k], dests[k]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotMoveCost is BenchmarkMoveCost with the IndexedPolicy
// installed: one incremental move trial costed entirely from the compiled
// CSR snapshot, touching no Partition maps and no pointers. The subjects
// extend up the size axis (syn-p128 ≈ an order of magnitude past ether);
// the CI zero-alloc gate covers this benchmark too.
func BenchmarkSnapshotMoveCost(b *testing.B) {
	for _, name := range []string{"ans", "ether", "syn-p8", "syn-p32", "syn-p128"} {
		b.Run(name, func(b *testing.B) {
			d, nodes, dests := moveBenchSetup(b, name, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(nodes)
				if _, err := d.MoveCost(nodes[k], dests[k]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "designs/s")
		})
	}
}

// BenchmarkFullCost is the same trial costed by full recompute — the
// before picture, and the denominator of the delta speedup claim.
func BenchmarkFullCost(b *testing.B) {
	for _, name := range []string{"ans", "ether"} {
		b.Run(name, func(b *testing.B) {
			g := loadEnv(b, name).Graph
			ev := partition.NewEvaluator(g, deltaSubjectConstraints(g), partition.DefaultWeights(), estimate.Options{})
			pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Cost(pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
