// Simulation-driven profiling: run the fuzzy controller in the behavioral
// interpreter under a stimulus, extract the measured branch-probability
// profile (§2.4.1: "obtained manually or through profiling"), rebuild the
// SLIF with it, and compare the resulting channel frequencies and process
// execution-time estimates against the hand-written profile.
//
// Run from the repository root:
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"specsyn/internal/alloc"
	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/interp"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func testdata(name string) string {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot locate testdata/%s; run from the repository root", name)
	return ""
}

func main() {
	src, err := os.ReadFile(testdata("fuzzy.vhd"))
	if err != nil {
		log.Fatal(err)
	}
	df, err := vhdl.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Simulate: one calibration pulse, then wiggling sensor inputs.
	m, err := interp.New(d)
	if err != nil {
		log.Fatal(err)
	}
	stim := func(step int, m *interp.Machine) {
		switch {
		case step == 0:
			_ = m.SetPort("cal", 1)
		case step == 1:
			_ = m.SetPort("cal", 0)
		default:
			_ = m.SetPort("in1", int64(10+(step*37)%200))
			_ = m.SetPort("in2", int64(20+(step*53)%200))
		}
	}
	const steps = 300
	if err := m.Run(steps, stim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d steps; fuzzymain executed %d control passes\n\n",
		steps, activations(m, d, "fuzzymain"))

	// 2. Build SLIF twice: hand-written profile vs measured profile.
	hand, err := profile.Load(testdata("fuzzy.prob"))
	if err != nil {
		log.Fatal(err)
	}
	measured := m.Profile()

	lib := alloc.Std()
	build := func(p *profile.Profile) *core.Graph {
		g, err := builder.Build(d, builder.Options{Profile: p, Techs: lib.Techs})
		if err != nil {
			log.Fatal(err)
		}
		lib2 := alloc.Std()
		if err := lib2.Apply(g); err != nil {
			log.Fatal(err)
		}
		return g
	}
	gHand, gMeas := build(hand), build(measured)

	fmt.Printf("%-28s %14s %14s\n", "channel", "hand accfreq", "measured")
	for _, key := range [][2]string{
		{"evaluaterule", "mr1"},
		{"evaluaterule", "in1val"},
		{"fuzzymain", "evaluaterule"},
		{"computecentroid", "conv"},
		{"clip", "lastout"},
	} {
		h := gHand.FindChannel(key[0], key[1])
		ms := gMeas.FindChannel(key[0], key[1])
		fmt.Printf("%-28s %14.3f %14.3f\n", h.Key(), h.AccFreq, ms.AccFreq)
	}

	// 3. Compare the resulting execution-time estimates.
	fmt.Printf("\n%-28s %14s %14s\n", "process exectime (us)", "hand", "measured")
	et := func(g *core.Graph, name string) float64 {
		pt := core.AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
		v, err := estimate.New(g, pt, estimate.Options{}).Exectime(g.NodeByName(name))
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	for _, p := range []string{"fuzzymain", "calmain"} {
		fmt.Printf("%-28s %14.1f %14.1f\n", p, et(gHand, p), et(gMeas, p))
	}
}

func activations(m *interp.Machine, d *sem.Design, name string) int64 {
	for b, n := range m.Activations {
		if b.UniqueID == name {
			return n
		}
	}
	_ = d
	return 0
}
