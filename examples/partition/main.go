// Constraint-driven partitioning of the answering machine: give the
// design a size-limited processor and a deadline on the controller, then
// compare the search algorithms — each evaluating hundreds of candidate
// partitions per run, which only SLIF's lookup-and-sum estimation makes
// practical (§5's "algorithms that explore thousands of possible designs").
//
// Run from the repository root:
//
//	go run ./examples/partition
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"specsyn/internal/estimate"
	"specsyn/internal/partition"
	"specsyn/internal/specsyn"
)

func testdata(name string) string {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot locate testdata/%s; run from the repository root", name)
	return ""
}

func main() {
	env := specsyn.New()
	for _, step := range []error{
		env.LoadVHDLFile(testdata("ans.vhd")),
		env.LoadProfileFile(testdata("ans.prob")),
		env.LoadLibraryFile(testdata("std.lib")),
	} {
		if step != nil {
			log.Fatal(step)
		}
	}
	if err := env.Build(); err != nil {
		log.Fatal(err)
	}
	g := env.Graph

	// Tighten the architecture: small program memory on the cpu and a
	// deadline on the controller's pass.
	g.ProcByName("cpu").SizeCon = 4096
	cons := partition.Constraints{
		Deadline: map[string]float64{"ctrl": 3.5e6}, // 3.5 s per answered call
	}

	st := g.Stats()
	fmt.Printf("answering machine: %d nodes, %d channels; cpu limited to %d bytes\n\n",
		st.BV, st.Channels, int(g.ProcByName("cpu").SizeCon))

	fmt.Printf("%-10s %10s %10s %12s %10s\n", "algorithm", "cost", "evals", "designs/s", "feasible")
	for _, algo := range []string{"random", "greedy", "cluster", "gm", "anneal"} {
		start := time.Now()
		res, err := env.PartitionSearch(context.Background(), algo, cons, partition.DefaultWeights(), 42, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		ev := partition.NewEvaluator(g, cons, partition.DefaultWeights(), estimate.Options{})
		feasible, err := ev.Feasible(res.Best)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.4f %10d %12.0f %10v\n",
			algo, res.Cost, res.Evals, float64(res.Evals)/dur.Seconds(), feasible)
	}

	// Show the winning mapping in detail.
	res, err := env.PartitionSearch(context.Background(), "gm", cons, partition.DefaultWeights(), 42, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup-migration result:\n%s\n", res.Best)
	rep, _, err := env.Estimate(res.Best, estimate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}
