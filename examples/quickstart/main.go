// Quickstart: build a SLIF access graph from an inline VHDL fragment,
// allocate the standard processor+ASIC architecture, and print the §3
// design-metric estimates for the all-software mapping and for a
// hardware/software split.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specsyn/internal/estimate"
	"specsyn/internal/specsyn"
)

// A small producer/filter system: one process samples an input, calls a
// filtering procedure over a window, and drives an output.
const spec = `
entity FilterE is
    port ( sample : in integer range 0 to 1023;
           result : out integer range 0 to 1023 );
end;

architecture behav of FilterE is
begin
    Main: process
        subtype word10 is integer range 0 to 1023;
        type win_array is array (0 to 31) of word10;
        variable window : win_array;
        variable widx   : integer range 0 to 31;
        variable acc    : integer;

        procedure Push is
        begin
            window(widx) := sample;
            if widx = 31 then
                widx := 0;
            else
                widx := widx + 1;
            end if;
        end;

        function Filtered return integer is
            variable sum : integer;
        begin
            sum := 0;
            for i in 0 to 31 loop
                sum := sum + window(i);
            end loop;
            return sum / 32;
        end;

    begin
        Push;
        acc := Filtered;
        result <= acc;
        wait on sample;
    end process;
end;
`

func main() {
	env := specsyn.New() // standard library: cpu (10 MHz), asic (50 MHz), ram, 16-bit bus
	env.LoadVHDL(spec)
	if err := env.Build(); err != nil {
		log.Fatal(err)
	}

	st := env.Graph.Stats()
	fmt.Printf("SLIF built in %v: %d nodes, %d channels\n\n", env.BuildTime, st.BV, st.Channels)
	for _, c := range env.Graph.Channels {
		fmt.Printf("  %-22s accfreq %-8.4g bits %d\n", c.Key(), c.AccFreq, c.Bits)
	}

	// All-software estimate.
	sw, err := env.DefaultPartition()
	if err != nil {
		log.Fatal(err)
	}
	rep, dur, err := env.Estimate(sw, estimate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall-software (estimated in %v):\n%s", dur, rep)

	// Move the filter function and the window to the ASIC.
	hw := sw.Clone()
	asic := env.Graph.ProcByName("asic")
	for _, name := range []string{"filtered", "window"} {
		if err := hw.Assign(env.Graph.NodeByName(name), asic); err != nil {
			log.Fatal(err)
		}
	}
	rep2, _, err := env.Estimate(hw, estimate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfilter on the ASIC:\n%s", rep2)
}
