// Allocation exploration: the first system-design task of §1 — choosing
// *which components to buy* before deciding what runs where. Several
// candidate architectures for the Ethernet coprocessor are each
// partitioned automatically and ranked by constraint-violation cost; SLIF
// estimation speed is what makes trying every candidate practical.
//
// Run from the repository root:
//
//	go run ./examples/explore [-timeout 500ms]
//
// The optional -timeout turns the sweep into an anytime run: on expiry the
// candidates partitioned so far keep their results, the in-flight one
// reports its best-so-far cost, and the rest are marked skipped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"specsyn/internal/alloc"
	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/partition"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func testdata(name string) string {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot locate testdata/%s; run from the repository root", name)
	return ""
}

func main() {
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the sweep (0 = none)")
	flag.Parse()

	src, err := os.ReadFile(testdata("ether.vhd"))
	if err != nil {
		log.Fatal(err)
	}
	prof, err := profile.Load(testdata("ether.prob"))
	if err != nil {
		log.Fatal(err)
	}
	df, err := vhdl.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		log.Fatal(err)
	}
	lib := alloc.Std()
	g, err := builder.Build(d, builder.Options{Profile: prof, Techs: lib.Techs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ethernet coprocessor: %d nodes, %d channels\n\n", g.Stats().BV, g.Stats().Channels)

	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	smallCPU := &core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 4096, PinCon: 48}
	bigCPU := &core.Processor{Name: "cpu", TypeName: "proc20", SizeCon: 65536, PinCon: 64}
	asic := &core.Processor{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 300000, PinCon: 120}
	ram := &core.Memory{Name: "ram", TypeName: "sram8", SizeCon: 65536}

	// Candidate architectures, cheapest first. The frame buffers alone are
	// ~3 KB of storage and the byte loops need hardware speed, so the
	// single small processor should lose and the richer architectures win.
	cands := []alloc.Candidate{
		{Name: "small-cpu-only", Procs: []*core.Processor{smallCPU}, Buses: []*core.Bus{bus}},
		{Name: "big-cpu-only", Procs: []*core.Processor{bigCPU}, Buses: []*core.Bus{bus}},
		{Name: "small-cpu+ram", Procs: []*core.Processor{smallCPU}, Mems: []*core.Memory{ram}, Buses: []*core.Bus{bus}},
		{Name: "cpu+asic+ram", Procs: []*core.Processor{bigCPU, asic}, Mems: []*core.Memory{ram}, Buses: []*core.Bus{bus}},
	}

	// A maximum frame occupies the wire for ~1.2 ms at 10 Mb/s, so the
	// serial loops must finish one frame in 1.5 ms; all-software needs
	// ~3 ms per frame, so processor-only architectures must lose.
	// Each candidate is partitioned by the parallel multi-start portfolio
	// (greedy, annealing restarts and random shards on a worker pool) with
	// a group-migration polish on the winner.
	cons := partition.Constraints{Deadline: map[string]float64{"txmain": 1500, "rxmain": 1500}}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	outcomes := alloc.ExploreParallel(ctx, g, cands, cons, partition.DefaultWeights(), partition.ParallelOptions{Legs: 6})
	fmt.Printf("explored %d candidates in %v\n\n", len(cands), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-18s %12s %10s\n", "architecture", "cost", "evals")
	for _, o := range outcomes {
		switch {
		case o.Skipped:
			fmt.Printf("%-18s %12s %10s  (skipped: sweep cut short)\n", o.Candidate.Name, "-", "-")
		case o.Err != nil:
			fmt.Printf("%-18s %12s %10s  (%v)\n", o.Candidate.Name, "-", "-", o.Err)
		case o.Partial:
			fmt.Printf("%-18s %12.4f %10d  (partial: best before cutoff)\n", o.Candidate.Name, o.Cost, o.Evals)
		default:
			fmt.Printf("%-18s %12.4f %10d\n", o.Candidate.Name, o.Cost, o.Evals)
		}
	}
	if best := outcomes[0]; !best.Skipped && best.Err == nil {
		fmt.Printf("\nbest architecture: %s\n", best.Candidate.Name)
	}
}
