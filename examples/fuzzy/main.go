// The paper's running example (Figures 1–3): build the SLIF access graph
// of the fuzzy-logic controller, show the annotated channels of Figure 3,
// and estimate the two implementations of Convolve the paper contrasts
// (80 µs on the processor type vs 10 µs on the ASIC type).
//
// Run from the repository root:
//
//	go run ./examples/fuzzy
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"specsyn/internal/estimate"
	"specsyn/internal/specsyn"
)

func testdata(name string) string {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot locate testdata/%s; run from the repository root", name)
	return ""
}

func main() {
	env := specsyn.New()
	for _, step := range []error{
		env.LoadVHDLFile(testdata("fuzzy.vhd")),
		env.LoadProfileFile(testdata("fuzzy.prob")),
		env.LoadLibraryFile(testdata("std.lib")),
		env.LoadOverridesFile(testdata("fuzzy.ov")),
	} {
		if step != nil {
			log.Fatal(step)
		}
	}
	if err := env.Build(); err != nil {
		log.Fatal(err)
	}
	g := env.Graph

	st := g.Stats()
	fmt.Printf("fuzzy-logic controller: %d BV nodes, %d channels (paper: 35, 56)\n\n", st.BV, st.Channels)

	// Figure 3's annotated edges. The full specification's rule arrays
	// have 384 entries (9 address bits + 8 data = 17 bits per access);
	// the paper's Figure 3 fragment uses 128-entry arrays (15 bits). Both
	// shapes are pinned by internal/builder's TestFigure3Fragment and
	// TestFullSpecFigure3, and the Fig. 4 counts printed above by
	// TestGoldenFigure4Counts.
	fmt.Println("Figure 3 annotations (full spec):")
	for _, key := range [][2]string{{"evaluaterule", "in1val"}, {"evaluaterule", "mr1"}} {
		c := g.FindChannel(key[0], key[1])
		fmt.Printf("  %-24s accfreq %-6.4g bits %d\n", c.Key(), c.AccFreq, c.Bits)
	}
	conv := g.NodeByName("convolve")
	fmt.Printf("  convolve ict_list: %g us on proc10, %g us on asic50\n\n",
		conv.ICT["proc10"], conv.ICT["asic50"])

	// Contrast the two Convolve implementations: everything on the cpu,
	// vs Convolve (and the arrays it chews through) on the ASIC.
	sw, err := env.DefaultPartition()
	if err != nil {
		log.Fatal(err)
	}
	swRep, _, err := env.Estimate(sw, estimate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Move the whole fuzzification datapath — the inner-loop behaviors
	// and every array they chew through — so the cut stays small.
	hw := sw.Clone()
	asic := g.ProcByName("asic")
	for _, name := range []string{
		"evaluaterule", "convolve", "computecentroid", "min", "max",
		"mr1", "mr2", "tmr1", "tmr2", "conv", "trunc", "sum", "wsum",
	} {
		if err := hw.Assign(g.NodeByName(name), asic); err != nil {
			log.Fatal(err)
		}
	}
	hwRep, _, err := env.Estimate(hw, estimate.Options{})
	if err != nil {
		log.Fatal(err)
	}

	var swT, hwT float64
	for _, p := range swRep.Processes {
		if p.Name == "fuzzymain" {
			swT = p.Exectime
		}
	}
	for _, p := range hwRep.Processes {
		if p.Name == "fuzzymain" {
			hwT = p.Exectime
		}
	}
	fmt.Printf("FuzzyMain execution time per control step:\n")
	fmt.Printf("  Convolve in software:   %8.1f us\n", swT)
	fmt.Printf("  Convolve on the ASIC:   %8.1f us   (%.2fx)\n\n", hwT, swT/hwT)

	fmt.Println("all-software report:")
	fmt.Print(swRep)

	// Where does FuzzyMain's time go? The breakdown answers the
	// designer's next question directly.
	rows, err := estimate.New(g, sw, estimate.Options{}).Breakdown(g.NodeByName("fuzzymain"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfuzzymain breakdown (all-software):\n%s", estimate.FormatBreakdown(rows))
}
