// Specification transformations on the volume instrument: procedure
// inlining and process merging directly on the SLIF graph, with
// annotation recomputation — the transformation task of §1 ("merging
// processes into a single process for implementation with a single
// controller"), demonstrated with the invariant the engine guarantees:
// total dynamic traffic per system iteration is preserved.
//
// Run from the repository root:
//
//	go run ./examples/transform
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"specsyn/internal/estimate"
	"specsyn/internal/specsyn"
	"specsyn/internal/xform"
)

func testdata(name string) string {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	log.Fatalf("cannot locate testdata/%s; run from the repository root", name)
	return ""
}

func main() {
	env := specsyn.New()
	for _, step := range []error{
		env.LoadVHDLFile(testdata("vol.vhd")),
		env.LoadProfileFile(testdata("vol.prob")),
		env.LoadLibraryFile(testdata("std.lib")),
	} {
		if step != nil {
			log.Fatal(step)
		}
	}
	if err := env.Build(); err != nil {
		log.Fatal(err)
	}
	g := env.Graph

	report := func(label string) {
		st := g.Stats()
		fmt.Printf("%-28s %3d nodes %3d channels   traffic %8.1f bits/iter\n",
			label, st.BV, st.Channels, xform.Traffic(g))
	}
	report("original specification:")

	// 1. Inline every single-caller helper: the classic pre-synthesis
	// cleanup. Node and channel counts drop; traffic is invariant.
	inlined, err := xform.InlineAll(g)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("after inlining %d helpers:", len(inlined)))
	fmt.Printf("  inlined: %v\n", inlined)

	// 2. Merge the two processes for a single-controller implementation.
	merged, err := xform.MergeProcesses(g, g.NodeByName("volmain"), g.NodeByName("calproc"), "volunit")
	if err != nil {
		log.Fatal(err)
	}
	report("after merging the processes:")

	// The merged process's weights are the sums, so one controller runs
	// the whole instrument; estimate it.
	pt, err := env.DefaultPartition()
	if err != nil {
		log.Fatal(err)
	}
	rep, _, err := env.Estimate(pt, estimate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-controller estimate (process %s):\n%s", merged.Name, rep)
}
