// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (§5):
//
//   - BenchmarkBuildSLIF/*    — Figure 4's T-slif column per example
//   - BenchmarkEstimate/*     — Figure 4's T-est column per example
//   - BenchmarkFormatSizes/*  — the SLIF vs ADD(VT) vs CDFG size comparison
//   - BenchmarkQuadratic*     — the n² computation-count comparison
//   - BenchmarkExplore*       — the "thousands of designs" estimation claim
//   - BenchmarkEstimateTags / NoMemo — ablations of design choices
//
// cmd/slifbench prints the same results as human-readable tables.
package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"specsyn/internal/builder"
	"specsyn/internal/cdfg"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/interp"
	"specsyn/internal/partition"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/specsyn"
	"specsyn/internal/syngen"
	"specsyn/internal/vhdl"
	"specsyn/internal/vt"
	"specsyn/internal/xform"
)

var examples = []string{"ans", "ether", "fuzzy", "vol"}

func readFile(b testing.TB, name string) string {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

// loadEnv builds one example end to end (outside the timed region).
func loadEnv(b testing.TB, name string) *specsyn.Env {
	b.Helper()
	env := specsyn.New()
	if err := env.LoadVHDLFile(filepath.Join("testdata", name+".vhd")); err != nil {
		b.Fatal(err)
	}
	if err := env.LoadProfileFile(filepath.Join("testdata", name+".prob")); err != nil {
		b.Fatal(err)
	}
	if err := env.LoadLibraryFile(filepath.Join("testdata", "std.lib")); err != nil {
		b.Fatal(err)
	}
	if name == "fuzzy" {
		if err := env.LoadOverridesFile(filepath.Join("testdata", "fuzzy.ov")); err != nil {
			b.Fatal(err)
		}
	}
	if err := env.Build(); err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkBuildSLIF measures Figure 4's T-slif: the complete pipeline from
// VHDL text to the fully annotated SLIF (parse, elaborate, extract accesses,
// compute frequencies, precompute weights, derive tags).
func BenchmarkBuildSLIF(b *testing.B) {
	for _, name := range examples {
		src := readFile(b, name+".vhd")
		prof, err := profile.Load(filepath.Join("testdata", name+".prob"))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := builder.BuildVHDL(src, builder.Options{Profile: prof})
				if err != nil {
					b.Fatal(err)
				}
				if g.Stats().BV == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkEstimate measures Figure 4's T-est: one complete size, pin,
// bitrate and performance report for a processor-ASIC partition, from an
// already built SLIF.
func BenchmarkEstimate(b *testing.B) {
	for _, name := range examples {
		env := loadEnv(b, name)
		pt, err := env.DefaultPartition()
		if err != nil {
			b.Fatal(err)
		}
		asic := env.Graph.ProcByName("asic")
		for _, n := range env.Graph.Variables() {
			if n.StorageBits > 2048 {
				if err := pt.Assign(n, asic); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est := estimate.New(env.Graph, pt, estimate.Options{})
				if _, err := est.Report(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFormatSizes measures the cost of building each comparison format
// and reports the node counts the §5 table compares (as custom metrics).
func BenchmarkFormatSizes(b *testing.B) {
	src := readFile(b, "fuzzy.vhd")
	parse := func() *sem.Design {
		df, err := vhdl.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		d, err := sem.Elaborate(df)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("slif", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			g, err := builder.BuildVHDL(src, builder.Options{})
			if err != nil {
				b.Fatal(err)
			}
			nodes = g.Stats().BV
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("vt", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = vt.Build(parse()).Stats().Nodes
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("cdfg", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = cdfg.Build(parse()).Stats().Nodes
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}

// BenchmarkQuadraticClustering runs the actual O(n²) hierarchical
// clustering over the fuzzy SLIF-AG — the algorithm class the §5
// computation-count table reasons about. On the 35-node SLIF this is
// microseconds; on a 1100-node CDFG it would be ~1000× more work.
func BenchmarkQuadraticClustering(b *testing.B) {
	env := loadEnv(b, "fuzzy")
	b.ResetTimer()
	var comps int
	for i := 0; i < b.N; i++ {
		_, c, err := partition.HierarchicalClusters(env.Graph, 3)
		if err != nil {
			b.Fatal(err)
		}
		comps = c
	}
	b.ReportMetric(float64(comps), "paircomps")
}

// BenchmarkEstimatePerPartition measures the marginal cost of evaluating
// one candidate partition during search — the quantity that must stay tiny
// for "algorithms that explore thousands of possible designs".
func BenchmarkEstimatePerPartition(b *testing.B) {
	for _, name := range examples {
		env := loadEnv(b, name)
		ev := partition.NewEvaluator(env.Graph, partition.Constraints{}, partition.DefaultWeights(), estimate.Options{})
		pt := core.AllToProcessor(env.Graph, env.Graph.Procs[0], env.Graph.Buses[0])
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.Cost(pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// exploreGraphs collects the exploration subjects: the four paper examples
// plus generated specifications that extend the size axis past "ether".
func exploreGraphs(b testing.TB) []struct {
	name string
	g    *core.Graph
} {
	b.Helper()
	var subjects []struct {
		name string
		g    *core.Graph
	}
	for _, name := range examples {
		subjects = append(subjects, struct {
			name string
			g    *core.Graph
		}{name, loadEnv(b, name).Graph})
	}
	for _, procs := range []int{8, 32} {
		subjects = append(subjects, struct {
			name string
			g    *core.Graph
		}{fmt.Sprintf("syn-p%d", procs), synGraph(b, procs)})
	}
	return subjects
}

// synGraph builds a generated scaling subject with the standard two-way
// allocation (cpu + custom asic on one bus).
func synGraph(b testing.TB, procs int) *core.Graph {
	b.Helper()
	src := syngen.Generate(syngen.Config{Seed: 7, Processes: procs})
	g, err := builder.BuildVHDL(src, builder.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10"})
	g.AddProcessor(&core.Processor{Name: "asic", TypeName: "asic50", Custom: true})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	return g
}

func exploreConfig(g *core.Graph) partition.Config {
	ev := partition.NewEvaluator(g, partition.Constraints{}, partition.DefaultWeights(), estimate.Options{})
	return partition.Config{Eval: ev, Policy: partition.SingleBus(g.Buses[0]), Seed: 42, MaxIters: 1000}
}

// BenchmarkExploreThousand times a 1000-partition random exploration of
// each example end to end, one sub-benchmark per subject, reporting the
// designs-per-second throughput and the best cost reached (the baseline
// the parallel engine must reproduce exactly).
func BenchmarkExploreThousand(b *testing.B) {
	for _, sub := range exploreGraphs(b) {
		b.Run(sub.name, func(b *testing.B) {
			var res partition.Result
			start := time.Now()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = partition.Random(context.Background(), sub.g, exploreConfig(sub.g))
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*res.Evals)/elapsed.Seconds(), "designs/s")
			}
			b.ReportMetric(res.Cost, "bestcost")
		})
	}
}

// BenchmarkSnapshotExplore runs the same 1000-partition exploration as
// BenchmarkExploreThousand through the snapshot-native explorer: every
// candidate is written into the flat assignment vector and costed from the
// compiled CSR arrays, with the best cost asserted identical (within
// summation tolerance) to the pointer path's at equal seed.
func BenchmarkSnapshotExplore(b *testing.B) {
	for _, sub := range exploreGraphs(b) {
		seq, err := partition.Random(context.Background(), sub.g, exploreConfig(sub.g))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sub.name, func(b *testing.B) {
			var res partition.Result
			start := time.Now()
			for i := 0; i < b.N; i++ {
				cfg := exploreConfig(sub.g)
				cfg.IdxPolicy = partition.SingleBusIdx(sub.g, sub.g.Buses[0])
				var err error
				res, err = partition.SnapRandom(context.Background(), sub.g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			if diff := res.Cost - seq.Cost; diff > 1e-9 || diff < -1e-9 {
				b.Fatalf("snapshot best cost %v != pointer-path %v at equal seed", res.Cost, seq.Cost)
			}
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*res.Evals)/elapsed.Seconds(), "designs/s")
			}
			b.ReportMetric(res.Cost, "bestcost")
		})
	}
}

// BenchmarkParallelExplore runs the identical enumeration through the
// parallel multi-start engine at 1, 2 and 4 workers (legs = workers). The
// best cost is asserted equal to the sequential baseline's at every worker
// count — the engine's determinism contract — so the only thing the worker
// axis changes is throughput.
func BenchmarkParallelExplore(b *testing.B) {
	for _, sub := range exploreGraphs(b) {
		seq, err := partition.Random(context.Background(), sub.g, exploreConfig(sub.g))
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			opt := partition.ParallelOptions{Workers: workers, Legs: 4}
			b.Run(fmt.Sprintf("%s/w%d", sub.name, workers), func(b *testing.B) {
				var res partition.MultiResult
				start := time.Now()
				for i := 0; i < b.N; i++ {
					var err error
					res, err = partition.ParallelRandom(context.Background(), sub.g, exploreConfig(sub.g), opt)
					if err != nil {
						b.Fatal(err)
					}
				}
				elapsed := time.Since(start)
				if res.Cost != seq.Cost {
					b.Fatalf("parallel best cost %v != sequential %v at equal seed", res.Cost, seq.Cost)
				}
				if elapsed > 0 {
					b.ReportMetric(float64(b.N*res.Evals)/elapsed.Seconds(), "designs/s")
				}
				b.ReportMetric(res.Cost, "bestcost")
			})
		}
	}
}

// BenchmarkSearchAlgorithms compares the search heuristics on the ans
// example under a size constraint.
func BenchmarkSearchAlgorithms(b *testing.B) {
	env := loadEnv(b, "ans")
	env.Graph.ProcByName("cpu").SizeCon = 4096
	for _, algo := range []string{"random", "greedy", "cluster", "gm", "anneal"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.PartitionSearch(context.Background(), algo, partition.Constraints{}, partition.DefaultWeights(), int64(i), 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateTags is the concurrency-tag ablation: the §3 baseline
// (sequential accesses) versus the §2.3 tag extension.
func BenchmarkEstimateTags(b *testing.B) {
	env := loadEnv(b, "ether")
	pt, err := env.DefaultPartition()
	if err != nil {
		b.Fatal(err)
	}
	for _, opt := range []struct {
		name string
		o    estimate.Options
	}{
		{"sequential", estimate.Options{}},
		{"tags", estimate.Options{UseTags: true}},
	} {
		b.Run(opt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est := estimate.New(env.Graph, pt, opt.o)
				if _, err := est.Report(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransform measures the transformation engine: inlining every
// single-caller helper of the ans example on a fresh clone per iteration.
func BenchmarkTransform(b *testing.B) {
	env := loadEnv(b, "ans")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := env.Graph.Clone(true)
		if _, err := xform.InlineAll(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialization measures .slif write+read of the largest example.
func BenchmarkSerialization(b *testing.B) {
	env := loadEnv(b, "ether")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := core.Write(&buf, env.Graph, nil); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkScaling extends Figure 4's size axis beyond the paper's largest
// example using generated specifications: T-slif (build) and T-est
// (estimate) as functions of specification size. Estimation must stay
// microseconds-flat-ish (it is linear in |BV|+|C|) even as specs grow 10×
// past "ether".
func BenchmarkScaling(b *testing.B) {
	for _, procs := range []int{2, 8, 32, 128} {
		src := syngen.Generate(syngen.Config{Seed: 7, Processes: procs})
		b.Run(fmt.Sprintf("build/p%d", procs), func(b *testing.B) {
			var bv, ch int
			for i := 0; i < b.N; i++ {
				g, err := builder.BuildVHDL(src, builder.Options{})
				if err != nil {
					b.Fatal(err)
				}
				bv, ch = g.Stats().BV, g.Stats().Channels
			}
			b.ReportMetric(float64(bv), "BV")
			b.ReportMetric(float64(ch), "C")
		})
		g, err := builder.BuildVHDL(src, builder.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cpu := &core.Processor{Name: "cpu", TypeName: "proc10"}
		g.AddProcessor(cpu)
		g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
		pt := core.AllToProcessor(g, cpu, g.Buses[0])
		b.Run(fmt.Sprintf("estimate/p%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := estimate.New(g, pt, estimate.Options{}).Report(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulate measures the behavioral interpreter on the fuzzy
// controller: one benchmark iteration is one simulated step (one control
// pass of the loop once calibrated).
func BenchmarkSimulate(b *testing.B) {
	src := readFile(b, "fuzzy.vhd")
	df, err := vhdl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		b.Fatal(err)
	}
	m, err := interp.New(d)
	if err != nil {
		b.Fatal(err)
	}
	// Calibrate once outside the timed region.
	if err := m.Run(2, func(step int, m *interp.Machine) {
		if step == 0 {
			_ = m.SetPort("cal", 1)
		} else {
			_ = m.SetPort("cal", 0)
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step := i
		if err := m.Step(func(_ int, m *interp.Machine) {
			_ = m.SetPort("in1", int64(10+(step*37)%200))
			_ = m.SetPort("in2", int64(20+(step*53)%200))
		}); err != nil {
			b.Fatal(err)
		}
	}
}
